(** Optimizer tests: redundant removal, combination (both heuristics),
    pipelining, DR-early placement, pass invariants, and the emitted
    IRONMAN call order. These mirror the paper's Figures 1 and 2. *)

open Commopt
module B = Ir.Block

let prelude =
  {|
constant n = 8;
region R = [1..n, 1..n];
region BigR = [0..n+1, 0..n+1];
direction east = [0, 1];
direction west = [0, -1];
direction north = [-1, 0];
var A, C, D, E : [BigR] float;
var x : float;
|}

let program body = Zpl.Check.compile_string (prelude ^ body)

let static config body = Ir.Count.static_count (Opt.Passes.compile config (program body))

let first_block config body =
  let code = Opt.Passes.optimize config (Opt.Lower.lower (program body)) in
  let acc = ref [] in
  B.map_blocks (fun b -> acc := b :: !acc) code;
  List.hd (List.rev !acc)

(* --- redundant removal (paper Figure 1(b)) --- *)

let test_rr_removes_duplicate () =
  let body = "procedure main(); begin [R] C := A@east; [R] D := A@east; end;" in
  Alcotest.(check int) "baseline 2" 2 (static Opt.Config.baseline body);
  Alcotest.(check int) "rr 1" 1 (static Opt.Config.rr_only body)

let test_rr_blocked_by_write () =
  (* the communicated array is modified in between: not redundant *)
  let body =
    "procedure main(); begin [R] C := A@east; [R] A := C; [R] D := A@east; end;"
  in
  Alcotest.(check int) "rr keeps both" 2 (static Opt.Config.rr_only body)

let test_rr_different_offsets_kept () =
  let body = "procedure main(); begin [R] C := A@east; [R] D := A@west; end;" in
  Alcotest.(check int) "different offsets" 2 (static Opt.Config.rr_only body)

let test_rr_scoped_to_block () =
  (* same transfer on both sides of a loop boundary is NOT removed: the
     optimizer's scope is a single source-level basic block *)
  let body =
    {|
procedure main();
begin
  [R] C := A@east;
  repeat
    [R] D := A@east;
  until x < 1.0;
end;
|}
  in
  Alcotest.(check int) "kept across blocks" 2 (static Opt.Config.rr_only body)

(* --- combination (paper Figure 1(c)) --- *)

let test_cc_combines_same_offset () =
  let body = "procedure main(); begin [R] C := A@east + E@east; end;" in
  Alcotest.(check int) "baseline 2" 2 (static Opt.Config.baseline body);
  Alcotest.(check int) "cc 1" 1 (static Opt.Config.cc_cum body);
  let b = first_block Opt.Config.cc_cum "procedure main(); begin [R] C := A@east + E@east; end;" in
  match B.live_xfers b with
  | [ x ] -> Alcotest.(check int) "two member arrays" 2 (List.length x.B.arrays)
  | _ -> Alcotest.fail "expected one combined transfer"

let test_cc_requires_same_offset () =
  let body = "procedure main(); begin [R] C := A@east + E@west; end;" in
  Alcotest.(check int) "not combined" 2 (static Opt.Config.cc_cum body)

let test_cc_blocked_by_write () =
  (* E is written between A's use and E's use: windows do not intersect *)
  let body =
    "procedure main(); begin [R] C := A@east; [R] E := C; [R] D := E@east; end;"
  in
  Alcotest.(check int) "not combined" 2 (static Opt.Config.cc_cum body)

let test_cc_same_array_not_merged () =
  (* paper: "same offset vector but different array variable" *)
  let body =
    "procedure main(); begin [R] C := A@east; [R] A := C; [R] D := A@east; end;"
  in
  Alcotest.(check int) "same array stays separate" 2 (static Opt.Config.cc_cum body)

(* --- pipelining (paper Figure 1(d)) --- *)

let test_pl_hoists_send () =
  let body =
    "procedure main(); begin [R] A := 1.0; [R] C := D; [R] E := A@east; end;"
  in
  let b = first_block Opt.Config.pl_cum body in
  match B.live_xfers b with
  | [ x ] ->
      Alcotest.(check int) "send after A's write" 1 x.B.send_pos;
      Alcotest.(check int) "recv before use" 2 x.B.recv_pos;
      Alcotest.(check int) "counts unchanged" 1
        (static Opt.Config.pl_cum body)
  | _ -> Alcotest.fail "expected one transfer"

let test_pl_stops_at_top () =
  let body = "procedure main(); begin [R] C := D; [R] E := A@east; end;" in
  let b = first_block Opt.Config.pl_cum body in
  match B.live_xfers b with
  | [ x ] -> Alcotest.(check int) "top of block" 0 x.B.send_pos
  | _ -> Alcotest.fail "expected one transfer"

let test_dr_early () =
  (* a previous transfer's fringe data is read at statement 1, so the next
     same-key transfer's DR may move to position 2, not earlier *)
  let body =
    {|
procedure main();
begin
  [R] C := A@east;
  [R] D := A@east + C;
  [R] A := D;
  [R] E := C;
  [R] E := A@east;
end;
|}
  in
  let b = first_block Opt.Config.pl_cum body in
  let late =
    List.find
      (fun (x : B.xfer) -> x.B.recv_pos = 4)
      (B.live_xfers b)
  in
  Alcotest.(check int) "DR after last fringe reader" 2 late.B.ready_pos;
  Alcotest.(check int) "SR after the write to A" 3 late.B.send_pos

(* --- heuristics (paper Figure 2) --- *)

let heuristic_body =
  (* (A,e) used at stmt 0 (distance 0), (E,e) used at stmt 2 with E
     defined before the block (distance = 2 statements). Merging would
     cost (E,e) its distance: max-latency refuses, max-combining merges. *)
  "procedure main(); begin [R] C := A@east; [R] D := C * 2.0; [R] D := D + E@east; end;"

let test_heuristics_differ () =
  Alcotest.(check int) "max-combining merges" 1
    (static Opt.Config.pl_cum heuristic_body);
  Alcotest.(check int) "max-latency refuses" 2
    (static Opt.Config.pl_max_latency heuristic_body)

let test_max_latency_merges_equal_windows () =
  (* both transfers live at the same window: no distance is lost *)
  let body = "procedure main(); begin [R] C := A@east + E@east; end;" in
  Alcotest.(check int) "merged" 1 (static Opt.Config.pl_max_latency body)

(* --- emission order --- *)

let test_emitted_call_order () =
  let ir =
    Opt.Passes.compile Opt.Config.pl_cum
      (program
         "procedure main(); begin [R] A := 1.0; [R] C := A@east + E@east; end;")
  in
  let calls =
    let rec go = function
      | [] -> []
      | Ir.Instr.Comm (c, x) :: rest -> (c, x) :: go rest
      | _ :: rest -> go rest
    in
    go ir.Ir.Instr.code
  in
  (match calls with
  | [ (Ir.Instr.DR, a); (Ir.Instr.SR, b); (Ir.Instr.DN, c); (Ir.Instr.SV, d) ]
    when a = b && b = c && c = d ->
      ()
  | _ -> Alcotest.fail "expected DR SR DN SV of one transfer");
  Alcotest.(check int) "one transfer in table" 1
    (Array.length ir.Ir.Instr.transfers)

let test_invariants_hold () =
  List.iter
    (fun config ->
      let code = Opt.Passes.optimize config (Opt.Lower.lower (program heuristic_body)) in
      B.check_invariants code)
    Opt.Config.[ baseline; rr_only; cc_cum; pl_cum; pl_max_latency ]

(* An invariant violation planted by a buggy pass must be diagnosable
   from the message alone: block identity, xfer uid, and the offending
   positions. *)
let test_invariant_message_identifies_xfer () =
  let bad : B.xfer =
    { B.uid = 7; off = (1, 0); arrays = [ 0 ]; ready_pos = 0; send_pos = 1;
      recv_pos = 1; live = true }
  in
  (* send_pos = 1 is out of range for an empty work array *)
  let code = [ B.Straight { B.work = [||]; xfers = [ bad ] } ] in
  match B.check_invariants code with
  | () -> Alcotest.fail "expected an invariant failure"
  | exception Failure msg ->
      let contains needle =
        let lh = String.length msg and ln = String.length needle in
        let rec go i =
          i + ln <= lh && (String.sub msg i ln = needle || go (i + 1))
        in
        ln = 0 || go 0
      in
      List.iter
        (fun frag ->
          Alcotest.(check bool)
            (Printf.sprintf "message %S mentions %S" msg frag)
            true (contains frag))
        [ "block 0"; "send_pos out of range"; "uid 7"; "(1,0)"; "0/1/1" ]

let test_config_names () =
  Alcotest.(check string) "baseline" "baseline" (Opt.Config.name Opt.Config.baseline);
  Alcotest.(check string) "rr" "rr" (Opt.Config.name Opt.Config.rr_only);
  Alcotest.(check string) "cc" "cc" (Opt.Config.name Opt.Config.cc_cum);
  Alcotest.(check string) "pl" "pl" (Opt.Config.name Opt.Config.pl_cum);
  Alcotest.(check string) "maxlat" "pl-maxlat" (Opt.Config.name Opt.Config.pl_max_latency)

(* --- dead-branch elimination (abstract interpretation satellite) --- *)

let dbe_body =
  {|
constant use_east = 0;
procedure main();
begin
  if use_east > 0 then
    [R] C := A@east;
  else
    [R] C := A;
  end;
  [R] D := A@west;
end;
|}

let test_dbe_removes_dead_transfer () =
  (* the guard folds to the literal 0 > 0: dbe proves the then-arm
     infeasible and the A@east transfer disappears from the static
     schedule; with dbe off both branches survive *)
  Alcotest.(check int) "dbe drops the dead transfer" 1
    (static Opt.Config.baseline dbe_body);
  Alcotest.(check int) "without dbe both arms survive" 2
    (static Opt.Config.(with_dbe false baseline) dbe_body);
  (* -D re-deciding the guard resurrects the transfer *)
  let prog =
    Zpl.Check.compile_string ~defines:[ ("use_east", 1.) ] (prelude ^ dbe_body)
  in
  Alcotest.(check int) "-D use_east=1 keeps it" 2
    (Ir.Count.static_count (Opt.Passes.compile Opt.Config.baseline prog))

let test_dbe_keeps_undecided_branch () =
  (* x is data-dependent (reduce result): the interval domain cannot
     decide the guard, so both arms must survive *)
  let body =
    {|
procedure main();
begin
  [R] x := +<< A;
  if x > 0.0 then
    [R] C := A@east;
  end;
  [R] D := A@west;
end;
|}
  in
  Alcotest.(check int) "undecided guard kept" 2
    (static Opt.Config.baseline body)

let test_dbe_zero_trip_for () =
  (* a statically zero-trip counted loop (hi < lo never enters the body,
     per the sequential executor) leaves x at its pre-loop 0.0, so the
     guard must stay undecided: walking the body once and keeping its
     post-state (x = 5.0) would splice the then-arm and delete the
     else-arm transfer that every concrete run takes *)
  let body =
    {|
procedure main();
begin
  x := 0.0;
  for i := 1 to 0 do
    x := 5.0;
  end;
  if x = 5.0 then
    [R] C := A;
  else
    [R] C := A@east;
    x := 2.0;
  end;
  [R] D := A@west;
end;
|}
  in
  Alcotest.(check int) "both arms survive" 2 (static Opt.Config.baseline body);
  (* runtime behavior preserved: the else-arm actually runs *)
  let prog = program body in
  let res =
    Sim.Engine.run
      (Sim.Engine.of_plans
         (Sim.Engine.plan ~machine:Machine.T3d.machine ~lib:Machine.T3d.pvm
            ~pr:2 ~pc:2
            (Ir.Flat.flatten (Opt.Passes.compile Opt.Config.baseline prog))))
  in
  let x = Option.get (Zpl.Prog.find_scalar prog "x") in
  match (Sim.Engine.final_env res.Sim.Engine.engine).(x.Zpl.Prog.s_id) with
  | Runtime.Values.VFloat v ->
      Alcotest.(check (float 0.0)) "else-arm ran after zero-trip loop" 2.0 v
  | _ -> Alcotest.fail "x is not a float"

let test_dbe_config_name () =
  Alcotest.(check string) "nodbe suffix"
    "baseline+nodbe"
    (Opt.Config.name Opt.Config.(with_dbe false baseline))

let test_pass_report () =
  let report, _ =
    Opt.Passes.report Opt.Config.cc_cum
      (program "procedure main(); begin [R] C := A@east + E@east; end;")
  in
  Alcotest.(check int) "baseline static" 2 report.Opt.Passes.baseline_static;
  Alcotest.(check int) "optimized static" 1 report.Opt.Passes.static_count;
  Alcotest.(check int) "member messages preserved" 2 report.Opt.Passes.static_members

let () =
  Alcotest.run "opt"
    [ ( "redundant removal",
        [ Alcotest.test_case "removes duplicate" `Quick test_rr_removes_duplicate;
          Alcotest.test_case "blocked by write" `Quick test_rr_blocked_by_write;
          Alcotest.test_case "offsets differ" `Quick test_rr_different_offsets_kept;
          Alcotest.test_case "block-scoped" `Quick test_rr_scoped_to_block ] );
      ( "combination",
        [ Alcotest.test_case "same offset merges" `Quick test_cc_combines_same_offset;
          Alcotest.test_case "offset must match" `Quick test_cc_requires_same_offset;
          Alcotest.test_case "write blocks merge" `Quick test_cc_blocked_by_write;
          Alcotest.test_case "same array not merged" `Quick test_cc_same_array_not_merged
        ] );
      ( "pipelining",
        [ Alcotest.test_case "hoists sends" `Quick test_pl_hoists_send;
          Alcotest.test_case "stops at block top" `Quick test_pl_stops_at_top;
          Alcotest.test_case "DR-early placement" `Quick test_dr_early ] );
      ( "heuristics",
        [ Alcotest.test_case "heuristics differ" `Quick test_heuristics_differ;
          Alcotest.test_case "equal windows merge" `Quick
            test_max_latency_merges_equal_windows ] );
      ( "dead branches",
        [ Alcotest.test_case "dbe removes a transfer" `Quick
            test_dbe_removes_dead_transfer;
          Alcotest.test_case "undecided branch kept" `Quick
            test_dbe_keeps_undecided_branch;
          Alcotest.test_case "zero-trip for keeps both arms" `Quick
            test_dbe_zero_trip_for;
          Alcotest.test_case "+nodbe config name" `Quick test_dbe_config_name ]
      );
      ( "emission",
        [ Alcotest.test_case "call order" `Quick test_emitted_call_order;
          Alcotest.test_case "invariants" `Quick test_invariants_hold;
          Alcotest.test_case "invariant failure names the xfer" `Quick
            test_invariant_message_identifies_xfer;
          Alcotest.test_case "config names" `Quick test_config_names;
          Alcotest.test_case "pass report" `Quick test_pass_report ] ) ]
