(** Flattening tests: the jump-threaded instruction vector must encode
    repeat/for/if control flow exactly; verified both structurally and by
    abstract execution of the scalar part. *)

open Commopt

let flatten ?(config = Opt.Config.baseline) src =
  Ir.Flat.flatten (Opt.Passes.compile config (Zpl.Check.compile_string src))

let prelude =
  {|
region R = [1..4, 1..4];
var A : [1..4, 1..4] float;
var x : float;
var i : int;
|}

(** Execute only the scalar/jump part of a flat program, ignoring kernels;
    returns the trace of executed opcode names and the final env. *)
let abstract_run (f : Ir.Flat.t) =
  let env = Runtime.Values.make_env f.Ir.Flat.prog in
  let trace = ref [] in
  let pc = ref 0 in
  let steps = ref 0 in
  let running = ref true in
  while !running do
    incr steps;
    if !steps > 10_000 then failwith "abstract run diverged";
    (match f.Ir.Flat.ops.(!pc) with
    | Ir.Flat.FHalt ->
        trace := "halt" :: !trace;
        running := false
    | Ir.Flat.FKernel _ ->
        trace := "kernel" :: !trace;
        incr pc
    | Ir.Flat.FReduce _ ->
        trace := "reduce" :: !trace;
        incr pc
    | Ir.Flat.FComm _ ->
        trace := "comm" :: !trace;
        incr pc
    | Ir.Flat.FCollPart _ | Ir.Flat.FCollFin _ ->
        trace := "coll" :: !trace;
        incr pc
    | Ir.Flat.FScalar { lhs; rhs } ->
        env.(lhs) <- Runtime.Values.eval_env env rhs;
        trace := "scalar" :: !trace;
        incr pc
    | Ir.Flat.FJump t ->
        trace := "jump" :: !trace;
        pc := t
    | Ir.Flat.FJumpIfNot (c, t) ->
        trace := "cond" :: !trace;
        if Runtime.Values.eval_bool env c then incr pc else pc := t)
  done;
  (List.rev !trace, env)

let count what trace = List.length (List.filter (( = ) what) trace)

let test_for_loop_repeats_body () =
  let f =
    flatten
      (prelude
     ^ "procedure main(); begin for i := 1 to 5 do [R] A := 1.0; end; end;")
  in
  let trace, env = abstract_run f in
  Alcotest.(check int) "5 kernel executions" 5 (count "kernel" trace);
  (* the loop variable is the freshest scalar (the checker creates it) *)
  Alcotest.(check bool) "loop var ran past bound" true
    (Runtime.Values.as_int env.(Array.length env - 1) = 6)

let test_downto_loop () =
  let f =
    flatten
      (prelude
     ^ "procedure main(); begin for i := 5 downto 2 do [R] A := 1.0; end; end;")
  in
  let trace, env = abstract_run f in
  Alcotest.(check int) "4 kernel executions" 4 (count "kernel" trace);
  Alcotest.(check int) "final value" 1
    (Runtime.Values.as_int env.(Array.length env - 1))

let test_empty_for_loop () =
  let f =
    flatten
      (prelude
     ^ "procedure main(); begin for i := 5 to 2 do [R] A := 1.0; end; end;")
  in
  let trace, _ = abstract_run f in
  Alcotest.(check int) "no kernel executions" 0 (count "kernel" trace)

let test_repeat_until () =
  let f =
    flatten
      (prelude
     ^ "procedure main(); begin x := 0.0; repeat x := x + 1.0; until x > 2.5; end;")
  in
  let trace, env = abstract_run f in
  (* body runs 3 times: x = 1, 2, 3 *)
  Alcotest.(check int) "3 body scalars + init" 4 (count "scalar" trace);
  Alcotest.(check (float 0.)) "final x" 3.0 (Runtime.Values.as_float env.(0))

let test_if_else_paths () =
  let body cond =
    prelude
    ^ Printf.sprintf
        "procedure main(); begin x := %s; if x > 0.0 then x := 10.0; else x \
         := 20.0; end; end;"
        cond
  in
  let run c =
    let _, env = abstract_run (flatten (body c)) in
    Runtime.Values.as_float env.(0)
  in
  Alcotest.(check (float 0.)) "then" 10.0 (run "1.0");
  Alcotest.(check (float 0.)) "else" 20.0 (run "-1.0")

let test_if_without_else () =
  let f =
    flatten
      (prelude
     ^ "procedure main(); begin x := 1.0; if x < 0.0 then x := 9.0; end; end;")
  in
  let _, env = abstract_run f in
  Alcotest.(check (float 0.)) "untouched" 1.0 (Runtime.Values.as_float env.(0))

let test_nested_control () =
  let f =
    flatten
      (prelude
     ^ {|
procedure main();
begin
  x := 0.0;
  for i := 1 to 3 do
    repeat
      x := x + 1.0;
    until x > 100.0;
  end;
end;
|})
  in
  let _, env = abstract_run f in
  (* inner repeat runs to 101 the first time, then once per outer iter *)
  Alcotest.(check (float 0.)) "nested loops" 103.0 (Runtime.Values.as_float env.(0))

let test_jump_targets_in_range () =
  List.iter
    (fun (b : Programs.Bench_def.t) ->
      let prog = Programs.Suite.compile ~scale:`Test b in
      let f = Ir.Flat.flatten (Opt.Passes.compile Opt.Config.pl_cum prog) in
      let n = Array.length f.Ir.Flat.ops in
      Array.iter
        (function
          | Ir.Flat.FJump t | Ir.Flat.FJumpIfNot (_, t) ->
              if t < 0 || t >= n then Alcotest.failf "jump target %d out of %d" t n
          | _ -> ())
        f.Ir.Flat.ops;
      (* exactly one halt, at the end *)
      Alcotest.(check bool) "halt last" true
        (f.Ir.Flat.ops.(n - 1) = Ir.Flat.FHalt);
      Array.iteri
        (fun i op -> if op = Ir.Flat.FHalt && i <> n - 1 then
            Alcotest.fail "interior halt")
        f.Ir.Flat.ops)
    Programs.Suite.all

let test_printer_outputs () =
  let prog =
    Zpl.Check.compile_string
      (prelude
     ^ "procedure main(); begin for i := 1 to 2 do [R] A := A + 1.0; end; end;")
  in
  let ir = Opt.Passes.compile Opt.Config.baseline prog in
  let s = Ir.Printer.program_to_string ir in
  let flat_s = Ir.Printer.flat_to_string (Ir.Flat.flatten ir) in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "structured shows for" true (contains s "for i := 1 to 2 do");
  Alcotest.(check bool) "flat shows jumps" true (contains flat_s "jump");
  Alcotest.(check bool) "flat shows halt" true (contains flat_s "halt")

let () =
  Alcotest.run "flat"
    [ ( "control flow",
        [ Alcotest.test_case "for repeats body" `Quick test_for_loop_repeats_body;
          Alcotest.test_case "downto" `Quick test_downto_loop;
          Alcotest.test_case "empty for" `Quick test_empty_for_loop;
          Alcotest.test_case "repeat/until" `Quick test_repeat_until;
          Alcotest.test_case "if/else" `Quick test_if_else_paths;
          Alcotest.test_case "if without else" `Quick test_if_without_else;
          Alcotest.test_case "nested" `Quick test_nested_control ] );
      ( "structure",
        [ Alcotest.test_case "jump targets" `Quick test_jump_targets_in_range;
          Alcotest.test_case "printers" `Quick test_printer_outputs ] ) ]
