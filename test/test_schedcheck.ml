(** Schedcheck: the independent schedule verifier must (a) accept every
    schedule the real pipeline emits — all benchmarks under all paper
    experiment rows — and (b) reject perturbed schedules, with the
    intended checker firing and the diagnostic naming the transfer and
    its instruction position. The mutations mirror the failure modes the
    optimizations could introduce: dropped or duplicated IRONMAN calls,
    an SR hoisted above a writer, a needed transfer deleted, and
    non-canonical rendezvous orders. *)

open Commopt
module I = Ir.Instr
module S = Analysis.Schedcheck

(* ------------------------------------------------------------------ *)
(* Mutation helpers: structural edits on the final instruction tree    *)
(* ------------------------------------------------------------------ *)

(** Apply [f] to every instruction list in the tree, strictly in document
    order with inner lists before their enclosing list — so stateful
    "first match" edits hit the leftmost innermost occurrence. *)
let rec map_lists (f : I.instr list -> I.instr list) (is : I.instr list) :
    I.instr list =
  let rec each = function
    | [] -> []
    | i :: rest ->
        let i =
          match i with
          | I.Repeat (b, c) -> I.Repeat (map_lists f b, c)
          | I.For { var; lo; hi; step; body } ->
              I.For { var; lo; hi; step; body = map_lists f body }
          | I.If (c, a, b) -> I.If (c, map_lists f a, map_lists f b)
          | (I.Comm _ | I.Kernel _ | I.ScalarK _ | I.ReduceK _ | I.CollPart _
            | I.CollFin _) as i ->
              i
        in
        i :: each rest
  in
  f (each is)

let drop pred = map_lists (List.filter (fun i -> not (pred i)))

let dup pred =
  map_lists (List.concat_map (fun i -> if pred i then [ i; i ] else [ i ]))

(** Insert [x] after the first instruction matching [pred] (innermost
    lists are visited first). *)
let insert_after_first pred x code =
  let placed = ref false in
  map_lists
    (List.concat_map (fun i ->
         if (not !placed) && pred i then begin
           placed := true;
           [ i; x ]
         end
         else [ i ]))
    code

(** Swap the first adjacent pair where [p1 x; p2 y] into [y; x]. *)
let swap_adjacent p1 p2 code =
  let swapped = ref false in
  map_lists
    (fun l ->
      let rec go = function
        | x :: y :: rest when (not !swapped) && p1 x && p2 y ->
            swapped := true;
            y :: x :: rest
        | x :: rest -> x :: go rest
        | [] -> []
      in
      go l)
    code

let is_comm c t = fun i -> i = I.Comm (c, t)

(* ------------------------------------------------------------------ *)
(* Fixture: a two-statement loop whose schedule we know exactly        *)
(* ------------------------------------------------------------------ *)

let fixture_src =
  {|
constant n = 8;
region R = [1..n, 1..n];
region BigR = [0..n+1, 0..n+1];
direction east  = [ 0,  1];
direction west  = [ 0, -1];
direction north = [-1,  0];
var A, B : [BigR] float;
var t : int;
procedure main();
begin
  [BigR] A := Index1 * 0.5;
  [BigR] B := Index2 * 0.25;
  for t := 1 to 3 do
    [R] B := A@east + A@west;
    [R] A := 0.5 * B@north;
  end;
end;
|}

(* Baseline schedule of the loop body (transfer ids are dense in
   emission order):
     DR(x0:A@east) DR(x1:A@west) SR(x0) SR(x1)
     DN(x0) SV(x0) DN(x1) SV(x1)
     [R] B := A@east + A@west          <- writes B
     DR(x2:B@north) SR(x2) DN(x2) SV(x2)
     [R] A := 0.5 * B@north            <- writes A
   The sanity test below pins this down so the hardcoded ids in the
   mutations are justified. *)

let fixture () =
  Opt.Passes.compile Opt.Config.baseline
    (Zpl.Check.compile_string fixture_src)

let test_fixture_sanity () =
  let ir = fixture () in
  let prog = ir.I.prog in
  Alcotest.(check int) "three transfers" 3 (Array.length ir.I.transfers);
  Alcotest.(check (list string)) "transfer table"
    [ "x0:A@east"; "x1:A@west"; "x2:B@north" ]
    (Array.to_list
       (Array.map (fun x -> Ir.Transfer.describe prog x) ir.I.transfers));
  Alcotest.(check (list string)) "schedcheck-clean" []
    (List.map S.diag_to_string (S.check ir))

(* ------------------------------------------------------------------ *)
(* The mutation suite                                                  *)
(* ------------------------------------------------------------------ *)

let checkers ds =
  List.sort_uniq compare (List.map (fun d -> d.S.d_checker) ds)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

(** Assert the mutated schedule is rejected, the intended checker fires,
    and some diagnostic of that checker names the expected transfer (by
    its [Transfer.describe] string) at a concrete position. *)
let assert_rejected ~name ~intended ~xfer (mutate : I.instr list -> I.instr list)
    =
  let ir = fixture () in
  let ir' = { ir with I.code = mutate ir.I.code } in
  let ds = S.check ir' in
  if ds = [] then Alcotest.failf "%s: mutation not rejected" name;
  if not (List.mem intended (checkers ds)) then
    Alcotest.failf "%s: %s checker did not fire; got:\n%s" name
      (S.checker_name intended)
      (String.concat "\n" (List.map S.diag_to_string ds));
  let named =
    List.filter
      (fun d ->
        d.S.d_checker = intended
        && contains d.S.d_msg (Ir.Transfer.describe ir.I.prog ir.I.transfers.(xfer)))
      ds
  in
  (match named with
  | [] ->
      Alcotest.failf "%s: no %s diagnostic names transfer %d:\n%s" name
        (S.checker_name intended) xfer
        (String.concat "\n" (List.map S.diag_to_string ds))
  | d :: _ ->
      if d.S.d_pos < 0 then Alcotest.failf "%s: negative position" name);
  (* the rendered diagnostic must carry a jumpable ir#N position *)
  List.iter
    (fun d ->
      let s = S.diag_to_string d in
      if not (contains s "ir#") then
        Alcotest.failf "%s: diagnostic lacks an ir# position: %s" name s)
    ds

let test_drop_dn () =
  (* SV arrives with the transfer still 'after SR' *)
  assert_rejected ~name:"drop DN" ~intended:S.Protocol ~xfer:0
    (drop (is_comm I.DN 0))

let test_drop_sv () =
  (* the activation never completes: caught at the loop's back edge /
     program end *)
  assert_rejected ~name:"drop SV" ~intended:S.Protocol ~xfer:2
    (drop (is_comm I.SV 2))

let test_duplicate_sr () =
  assert_rejected ~name:"duplicate SR" ~intended:S.Protocol ~xfer:0
    (dup (is_comm I.SR 0))

let test_sr_above_writer () =
  (* hoist DR/SR of x2:B@north above the kernel that writes B — the
     send races the message snapshot between SR and SV. The calls are
     re-inserted in canonical class positions so only the race checker
     can object. *)
  assert_rejected ~name:"SR above writer" ~intended:S.Race ~xfer:2 (fun code ->
      code
      |> drop (fun i -> is_comm I.DR 2 i || is_comm I.SR 2 i)
      |> insert_after_first (is_comm I.DR 1) (I.Comm (I.DR, 2))
      |> insert_after_first (is_comm I.SR 1) (I.Comm (I.SR, 2)))

let test_dn_after_reader () =
  (* deliver x2 only after the kernel that reads B@north: the read races
     the in-flight message *)
  assert_rejected ~name:"DN after reader" ~intended:S.Race ~xfer:2 (fun code ->
      let is_reader = function
        | I.Kernel a -> a.Zpl.Prog.lhs = 0 (* A := 0.5 * B@north *)
        | _ -> false
      in
      code
      |> drop (fun i -> is_comm I.DN 2 i || is_comm I.SV 2 i)
      |> insert_after_first is_reader (I.Comm (I.SV, 2))
      |> insert_after_first is_reader (I.Comm (I.DN, 2)))

let test_delete_needed_transfer () =
  (* remove all four calls of x0:A@east, as an unsound redundancy
     removal would: the stencil's fringe read is uncovered *)
  assert_rejected ~name:"delete needed transfer" ~intended:S.Availability
    ~xfer:0
    (drop (fun i -> match i with I.Comm (_, 0) -> true | _ -> false))

let test_dr_uid_order () =
  assert_rejected ~name:"DR uid order" ~intended:S.Order ~xfer:0
    (swap_adjacent (is_comm I.DR 0) (is_comm I.DR 1))

let test_sr_uid_order () =
  assert_rejected ~name:"SR uid order" ~intended:S.Order ~xfer:0
    (swap_adjacent (is_comm I.SR 0) (is_comm I.SR 1))

let test_split_dn_sv_pair () =
  (* [DN0 SV0 DN1 SV1] -> [DN0 DN1 SV0 SV1]: protocol-legal, but the
     rendezvous groups are no longer adjacent pairs *)
  assert_rejected ~name:"split DN/SV pair" ~intended:S.Order ~xfer:0
    (swap_adjacent (is_comm I.SV 0) (is_comm I.DN 1))

(* ------------------------------------------------------------------ *)
(* Branch pruning: statically-infeasible arms                          *)
(* ------------------------------------------------------------------ *)

(* A stray DN for x0 — by the point it is inserted the activation has
   completed, so replaying it is a protocol violation wherever it is
   actually reachable. *)
let stray_dn = I.Comm (I.DN, 0)
let never = Zpl.Prog.SBin (Zpl.Ast.Gt, Zpl.Prog.SInt 0, Zpl.Prog.SInt 1)

let rec find_for_var (is : I.instr list) : int option =
  List.fold_left
    (fun acc i ->
      match acc with
      | Some _ -> acc
      | None -> (
          match i with
          | I.For { var; _ } -> Some var
          | I.Repeat (b, _) -> find_for_var b
          | I.If (_, a, b) -> (
              match find_for_var a with
              | Some _ as v -> v
              | None -> find_for_var b)
          | _ -> None))
    None is

let test_prune_infeasible_branch () =
  (* protocol violation under a statically-false guard: the unpruned
     checkers walk both arms and report it; with ~prune:true the
     interval domain proves the arm infeasible and the schedule is
     accepted — the pruned and unpruned path sets genuinely differ *)
  let ir = fixture () in
  let ir' = { ir with I.code = ir.I.code @ [ I.If (never, [ stray_dn ], []) ] } in
  (match S.check ir' with
  | [] -> Alcotest.fail "unpruned check accepted the guarded violation"
  | ds ->
      Alcotest.(check bool) "protocol fired unpruned" true
        (List.mem S.Protocol (checkers ds)));
  Alcotest.(check (list string)) "pruned accepts" []
    (List.map S.diag_to_string (S.check ~prune:true ir'));
  let f = Ir.Flat.flatten ir' in
  (match S.check_flat f with
  | [] -> Alcotest.fail "unpruned flat check accepted the guarded violation"
  | _ -> ());
  Alcotest.(check (list string)) "pruned flat accepts" []
    (List.map S.diag_to_string (S.check_flat ~prune:true f))

let test_prune_keeps_live_arm () =
  (* a decided-true guard: pruning must still check the live arm *)
  let always = Zpl.Prog.SBin (Zpl.Ast.Gt, Zpl.Prog.SInt 1, Zpl.Prog.SInt 0) in
  let ir = fixture () in
  let ir' =
    { ir with I.code = ir.I.code @ [ I.If (always, [ stray_dn ], []) ] }
  in
  List.iter
    (fun prune ->
      match S.check ~prune ir' with
      | [] ->
          Alcotest.failf "live arm not checked (prune=%b)" prune
      | ds ->
          Alcotest.(check bool) "protocol fired" true
            (List.mem S.Protocol (checkers ds)))
    [ false; true ]

let test_prune_undecided_guard_reported () =
  (* guard on the loop variable, whose interval [1,3] leaves t > 2
     undecided: pruning must keep both arms, so the violation is
     reported either way (precision-only contract) *)
  let ir = fixture () in
  let var =
    match find_for_var ir.I.code with
    | Some v -> v
    | None -> Alcotest.fail "fixture lost its for loop"
  in
  let undecided =
    Zpl.Prog.SBin (Zpl.Ast.Gt, Zpl.Prog.SVar var, Zpl.Prog.SInt 2)
  in
  let ir' =
    { ir with
      I.code =
        insert_after_first (is_comm I.SV 2)
          (I.If (undecided, [ stray_dn ], []))
          ir.I.code }
  in
  List.iter
    (fun prune ->
      match S.check ~prune ir' with
      | [] -> Alcotest.failf "undecided guard pruned away (prune=%b)" prune
      | ds ->
          Alcotest.(check bool) "protocol fired" true
            (List.mem S.Protocol (checkers ds)))
    [ false; true ];
  let f = Ir.Flat.flatten ir' in
  List.iter
    (fun prune ->
      if S.check_flat ~prune f = [] then
        Alcotest.failf "undecided guard pruned away in flat form (prune=%b)"
          prune)
    [ false; true ]

let test_prune_grid_unchanged () =
  (* on the real benchmark grid (no infeasible branches) pruning must
     not change the verdict: everything stays clean *)
  List.iter
    (fun (b : Programs.Bench_def.t) ->
      let prog = Programs.Suite.compile ~scale:`Test b in
      List.iter
        (fun (label, config, _lib) ->
          let ir = Opt.Passes.compile config prog in
          match S.check ~prune:true ir with
          | [] -> ()
          | ds ->
              Alcotest.failf "%s [%s] with pruning:\n%s"
                b.Programs.Bench_def.name label
                (String.concat "\n" (List.map S.diag_to_string ds)))
        Report.Experiment.paper_rows)
    Programs.Suite.all

(* ------------------------------------------------------------------ *)
(* End-of-program protocol check in straight-line code                 *)
(* ------------------------------------------------------------------ *)

let test_incomplete_at_end () =
  let ir =
    Opt.Passes.compile Opt.Config.baseline
      (Zpl.Check.compile_string
         {|
constant n = 8;
region R = [1..n, 1..n];
region BigR = [0..n+1, 0..n+1];
direction east = [0, 1];
var A, B : [BigR] float;
procedure main();
begin
  [BigR] A := Index1 * 0.5;
  [R] B := A@east;
end;
|})
  in
  let ir' = { ir with I.code = drop (is_comm I.SV 0) ir.I.code } in
  let ds = S.check ir' in
  (* the order checker also notices the SV-less rendezvous group; the
     end-of-program protocol diagnostic is the one under test here *)
  match List.filter (fun d -> d.S.d_checker = S.Protocol) ds with
  | [ d ] ->
      Alcotest.(check int) "position one past the end"
        (I.size_list ir'.I.code) d.S.d_pos;
      Alcotest.(check bool) "names the incompleteness" true
        (contains d.S.d_msg "never completes")
  | _ ->
      Alcotest.failf "expected exactly one protocol diagnostic, got:\n%s"
        (String.concat "\n" (List.map S.diag_to_string ds))

(* ------------------------------------------------------------------ *)
(* The full experiment grid is schedcheck-clean                        *)
(* ------------------------------------------------------------------ *)

let test_grid_clean () =
  List.iter
    (fun (b : Programs.Bench_def.t) ->
      let prog = Programs.Suite.compile ~scale:`Test b in
      List.iter
        (fun (label, config, _lib) ->
          let ir = Opt.Passes.compile config prog in
          match S.check ir with
          | [] -> ()
          | ds ->
              Alcotest.failf "%s [%s]:\n%s" b.Programs.Bench_def.name label
                (String.concat "\n" (List.map S.diag_to_string ds)))
        Report.Experiment.paper_rows)
    Programs.Suite.all

let test_compile_check_flag () =
  (* ?check:true on the pass driver runs the verifier in-line *)
  let prog = Zpl.Check.compile_string fixture_src in
  ignore (Opt.Passes.compile ~check:true Opt.Config.pl_cum prog);
  let c = compile ~check:true ~config:Opt.Config.pl_cum fixture_src in
  ignore (recompile ~check:true ~config:Opt.Config.rr_only c)

let test_check_exn_message () =
  let ir = fixture () in
  let ir' = { ir with I.code = drop (is_comm I.DN 0) ir.I.code } in
  match S.check_exn ir' with
  | () -> Alcotest.fail "expected check_exn to raise"
  | exception Failure msg ->
      Alcotest.(check bool) "headline" true
        (contains msg "schedule verification failed");
      Alcotest.(check bool) "transfer named" true (contains msg "x0:A@east");
      Alcotest.(check bool) "position named" true (contains msg "ir#")

(* ------------------------------------------------------------------ *)
(* Annotated dump and numbering agreement                              *)
(* ------------------------------------------------------------------ *)

let test_annotated_dump_numbering () =
  let ir =
    Opt.Passes.compile Opt.Config.pl_cum (Zpl.Check.compile_string fixture_src)
  in
  let dump = Ir.Printer.program_to_annotated_string ir in
  let lines = String.split_on_char '\n' dump in
  let indexed =
    List.filter_map
      (fun l ->
        match String.index_opt l ':' with
        | Some i -> int_of_string_opt (String.trim (String.sub l 0 i))
        | None -> None)
      lines
  in
  (* exactly the preorder indices 0 .. size-1, in order *)
  Alcotest.(check (list int)) "stable preorder indices"
    (List.init (I.size_list ir.I.code) Fun.id)
    indexed;
  Alcotest.(check bool) "transfers described" true
    (contains dump "DR(x0:A@east)")

(* ------------------------------------------------------------------ *)
(* Pass-named invariant failures (driver satellite)                    *)
(* ------------------------------------------------------------------ *)

let test_invariant_names_pass () =
  let prog = Zpl.Check.compile_string fixture_src in
  let code = Opt.Lower.lower prog in
  (* corrupt a transfer the way a buggy pass would *)
  (match Ir.Block.all_live code with
  | x :: _ -> x.Ir.Block.ready_pos <- x.Ir.Block.send_pos + 1
  | [] -> Alcotest.fail "fixture has no transfers");
  match Opt.Passes.optimize Opt.Config.baseline code with
  | _ -> Alcotest.fail "expected an invariant failure"
  | exception Failure msg ->
      Alcotest.(check bool) "names the stage" true (contains msg "after lower")

let () =
  Alcotest.run "schedcheck"
    [ ( "fixture",
        [ Alcotest.test_case "baseline schedule as expected" `Quick
            test_fixture_sanity ] );
      ( "mutations",
        [ Alcotest.test_case "drop DN -> protocol" `Quick test_drop_dn;
          Alcotest.test_case "drop SV -> protocol" `Quick test_drop_sv;
          Alcotest.test_case "duplicate SR -> protocol" `Quick
            test_duplicate_sr;
          Alcotest.test_case "SR above writer -> race" `Quick
            test_sr_above_writer;
          Alcotest.test_case "DN after reader -> race" `Quick
            test_dn_after_reader;
          Alcotest.test_case "delete needed transfer -> availability" `Quick
            test_delete_needed_transfer;
          Alcotest.test_case "DR uid order -> order" `Quick test_dr_uid_order;
          Alcotest.test_case "SR uid order -> order" `Quick test_sr_uid_order;
          Alcotest.test_case "split DN/SV pair -> order" `Quick
            test_split_dn_sv_pair;
          Alcotest.test_case "incomplete activation at end" `Quick
            test_incomplete_at_end ] );
      ( "pruning",
        [ Alcotest.test_case "infeasible arm: pruned accepts, unpruned reports"
            `Quick test_prune_infeasible_branch;
          Alcotest.test_case "live arm still checked under pruning" `Quick
            test_prune_keeps_live_arm;
          Alcotest.test_case "undecided guard reported either way" `Quick
            test_prune_undecided_guard_reported;
          Alcotest.test_case "benchmark grid clean with pruning" `Quick
            test_prune_grid_unchanged ] );
      ( "pipeline",
        [ Alcotest.test_case "experiment grid is schedcheck-clean" `Quick
            test_grid_clean;
          Alcotest.test_case "compile ~check:true wiring" `Quick
            test_compile_check_flag;
          Alcotest.test_case "check_exn message" `Quick test_check_exn_message;
          Alcotest.test_case "annotated dump numbering" `Quick
            test_annotated_dump_numbering;
          Alcotest.test_case "invariant failures name the pass" `Quick
            test_invariant_names_pass ] ) ]
