(** Tests of the high-level [Commopt] API that examples, the CLI and
    downstream users build on. *)

open Commopt

let src =
  {|
constant n = 12;
region R = [1..n, 1..n];
region BigR = [0..n+1, 0..n+1];
direction e = [0, 1]; direction w = [0, -1];
var A, B : [BigR] float;
var err : float;
var t : int;
procedure main();
begin
  [BigR] A := Index1 * 0.5;
  for t := 1 to 4 do
    [R] B := 0.5 * (A@e + A@w);
    [R] err := max<< abs(B - A@e);
    [R] A := B;
  end;
end;
|}

let test_compile_defaults () =
  let c = compile src in
  Alcotest.(check bool) "default config is pl" true
    (c.config = Opt.Config.pl_cum);
  Alcotest.(check bool) "positive static count" true (static_count c > 0)

let test_defines () =
  let c = compile ~defines:[ ("n", 6.) ] src in
  Alcotest.(check string) "resized" "[0..7, 0..7]"
    (Zpl.Region.to_string (Zpl.Prog.array_info c.prog 0).a_region)

let test_recompile () =
  let c = compile ~config:Opt.Config.baseline src in
  let c' = recompile ~config:Opt.Config.cc_cum c in
  Alcotest.(check bool) "same typed program" true (c.prog == c'.prog);
  Alcotest.(check bool) "fewer transfers" true (static_count c' < static_count c)

let test_simulate_and_oracle () =
  let c = compile src in
  let res = simulate ~mesh:(2, 2) c in
  let oracle = run_oracle c in
  Alcotest.(check (float 0.)) "exact" 0.0 (oracle_distance c res oracle);
  Alcotest.(check bool) "time advanced" true (res.Sim.Engine.time > 0.)

let test_verify_passes () =
  let c = compile src in
  ignore (verify ~mesh:(2, 2) c)

let test_verify_rejects_sabotage () =
  (* hand-build a miscompiled program: transfers dropped *)
  let prog = Zpl.Check.compile_string src in
  let code = Opt.Lower.lower prog in
  Ir.Block.map_blocks
    (fun b ->
      List.iter (fun (x : Ir.Block.xfer) -> x.Ir.Block.live <- false) b.Ir.Block.xfers)
    code;
  let ir = Ir.Instr.of_code prog code in
  let c = { prog; config = Opt.Config.baseline; ir; flat = Ir.Flat.flatten ir } in
  Alcotest.(check bool) "verify raises" true
    (match verify ~mesh:(2, 2) c with
    | _ -> false
    | exception Failure _ -> true)

let test_simulate_other_machines () =
  let c = compile src in
  List.iter
    (fun (machine, lib) ->
      let res = simulate ~machine ~lib ~mesh:(2, 2) c in
      Alcotest.(check bool) "ran" true (res.Sim.Engine.time > 0.))
    [ (Machine.Paragon.machine, Machine.Paragon.nx_sync);
      (Machine.Paragon.machine, Machine.Paragon.nx_async);
      (Machine.Paragon.machine, Machine.Paragon.nx_callback);
      (Machine.T3d.machine, Machine.T3d.shmem) ]

(* Regression: the oracle comparison used to test [d > tolerance] where
   [d] is the relative difference — false whenever [d] is NaN, so a
   simulation bug producing NaN where the oracle has a finite value
   sailed straight through [first_divergence] and [oracle_distance].
   Plant a NaN in a simulated store and check the comparison now flags
   it (and that the old predicate demonstrably did not). *)
let test_nan_flagged_as_divergence () =
  let c = compile src in
  let res = simulate ~mesh:(1, 1) c in
  let oracle = run_oracle c in
  Alcotest.(check (float 0.)) "clean before planting" 0.0
    (oracle_distance c res oracle);
  let pt = [| 2; 2 |] in
  let stores =
    Sim.Engine.proc_stores (Sim.Engine.procs res.Sim.Engine.engine).(0)
  in
  Runtime.Store.set stores.(0) pt Float.nan;
  let want = Runtime.Store.get oracle.Runtime.Seqexec.stores.(0) pt in
  (* the pre-fix comparison on exactly this cell: NaN-blind, passes *)
  let pre_fix_diverges =
    Float.abs (want -. Float.nan) /. (1.0 +. Float.abs want) > 1e-9
  in
  Alcotest.(check bool) "pre-fix comparison passes the NaN (the bug)" false
    pre_fix_diverges;
  Alcotest.(check bool) "cell_diverges flags it" true
    (cell_diverges ~tolerance:1e-9 ~got:Float.nan ~want);
  (match first_divergence c res oracle with
  | None -> Alcotest.fail "first_divergence missed the planted NaN"
  | Some d ->
      Alcotest.(check bool) "reports the NaN cell" true
        (Float.is_nan d.d_got && d.d_point = pt));
  Alcotest.(check (float 0.)) "oracle_distance is infinite" infinity
    (oracle_distance c res oracle)

(* Two NaNs agree: if the oracle itself predicts NaN at a cell, the
   simulation matching it is not a divergence. *)
let test_nan_both_sides_agree () =
  let c = compile src in
  let res = simulate ~mesh:(1, 1) c in
  let oracle = run_oracle c in
  let pt = [| 2; 2 |] in
  let stores =
    Sim.Engine.proc_stores (Sim.Engine.procs res.Sim.Engine.engine).(0)
  in
  Runtime.Store.set stores.(0) pt Float.nan;
  Runtime.Store.set oracle.Runtime.Seqexec.stores.(0) pt Float.nan;
  Alcotest.(check bool) "no divergence" true
    (first_divergence c res oracle = None);
  Alcotest.(check (float 0.)) "distance 0" 0.0 (oracle_distance c res oracle)

(* Opposite infinities: |inf - (-inf)| / (1 + inf) is NaN, another cell
   the pre-fix comparison silently passed. *)
let test_opposite_infinities_diverge () =
  Alcotest.(check bool) "inf vs -inf diverges" true
    (cell_diverges ~tolerance:1e-9 ~got:infinity ~want:neg_infinity);
  Alcotest.(check bool) "equal infinities agree" false
    (cell_diverges ~tolerance:1e-9 ~got:infinity ~want:infinity)

(* A reduction region that only becomes empty at run time slips past the
   checker's static rejection by design; the documented semantics are
   the operator's identity, uniformly in the oracle and the simulator. *)
let test_dynamic_empty_reduction_identity () =
  let c =
    compile
      {|
constant n = 8;
region R = [1..n, 1..n];
var A : [R] float;
var x, s : float;
var k : int;
procedure main();
begin
  [R] A := 2.0;
  k := 0;
  [1..k, 1..n] x := max<< A;
  [1..k, 1..n] s := +<< A;
end;
|}
  in
  let oracle = run_oracle c in
  (match Runtime.Seqexec.scalar_value oracle "x" with
  | Some (Runtime.Values.VFloat v) ->
      Alcotest.(check (float 0.)) "max<< identity" neg_infinity v
  | _ -> Alcotest.fail "x should be a float scalar");
  (match Runtime.Seqexec.scalar_value oracle "s" with
  | Some (Runtime.Values.VFloat v) ->
      Alcotest.(check (float 0.)) "+<< identity" 0.0 v
  | _ -> Alcotest.fail "s should be a float scalar");
  (* the simulated combining tree agrees with the oracle *)
  ignore (verify ~mesh:(2, 2) c)

let test_loc_guard () =
  (match Zpl.Loc.guard (fun () -> compile "nonsense !") with
  | Ok _ -> Alcotest.fail "should not parse"
  | Error msg -> Alcotest.(check bool) "located" true (String.length msg > 3))

let () =
  Alcotest.run "core-api"
    [ ( "api",
        [ Alcotest.test_case "compile" `Quick test_compile_defaults;
          Alcotest.test_case "defines" `Quick test_defines;
          Alcotest.test_case "recompile" `Quick test_recompile;
          Alcotest.test_case "simulate vs oracle" `Quick test_simulate_and_oracle;
          Alcotest.test_case "verify" `Quick test_verify_passes;
          Alcotest.test_case "verify catches sabotage" `Quick
            test_verify_rejects_sabotage;
          Alcotest.test_case "other machines" `Quick test_simulate_other_machines;
          Alcotest.test_case "NaN flagged as divergence" `Quick
            test_nan_flagged_as_divergence;
          Alcotest.test_case "both-NaN cells agree" `Quick
            test_nan_both_sides_agree;
          Alcotest.test_case "opposite infinities diverge" `Quick
            test_opposite_infinities_diverge;
          Alcotest.test_case "dynamic empty reduction identity" `Quick
            test_dynamic_empty_reduction_identity;
          Alcotest.test_case "error guard" `Quick test_loc_guard ] ) ]
