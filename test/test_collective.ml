(** Collective synthesis: the compiled DR/SR/DN/SV round schedules of
    all four algorithms must (a) pass Schedcheck — structured and flat —
    under every experiment row, (b) agree with the opaque vendor
    collective on every benchmark (bit-identical for max/min and for the
    rank-ordered ring/dissemination algorithms, within tolerance for
    reassociated sums), (c) stay bit-identical across serial/domains and
    wire/legacy drains, and (d) have a cost search that provably shifts
    its pick across machine models and mesh sizes. Mutation tests prove
    the checkers actually catch a mis-synthesized schedule. *)

open Commopt

let algs = Ir.Coll.all_algs
let alg_t = Alcotest.testable (Fmt.of_to_string Ir.Coll.alg_name) ( = )

let forced alg =
  { Opt.Config.pl_cum with Opt.Config.collective = Opt.Config.Forced alg }

let t3d = Machine.T3d.machine
let paragon = Machine.Paragon.machine

(** Compile one bundled benchmark at test scale for a collective target. *)
let compile_bench ?(config = Opt.Config.pl_cum) ?(machine = t3d)
    ?(lib = Machine.T3d.pvm) ~mesh (b : Programs.Bench_def.t) =
  compile ~config ~defines:b.Programs.Bench_def.test_defines ~machine ~lib
    ~mesh b.Programs.Bench_def.source

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let has_sum_reduce (b : Programs.Bench_def.t) =
  contains b.Programs.Bench_def.source "+<<"

(** The benchmarks with at least one full reduction (all of them, plus
    jacobi) — the grid the acceptance criteria run over. *)
let benches =
  match Programs.Suite.find "jacobi" with
  | Some j -> j :: Programs.Suite.paper_benchmarks
  | None -> Programs.Suite.paper_benchmarks

(* ------------------------------------------------------------------ *)
(* Cost search                                                         *)
(* ------------------------------------------------------------------ *)

(** The pick must shift across mesh sizes and across machine models:
    log-round algorithms win everywhere alpha dominates, but the
    power-of-two butterfly loses to dissemination off powers of two —
    at two distinct machine-model points, per the acceptance criteria. *)
let cost_search_shifts () =
  let pick ~machine ~lib nprocs =
    Opt.Collective.choose ~machine ~lib nprocs
  in
  Alcotest.check alg_t "T3D/PVM 4x4 -> recursive doubling" Ir.Coll.Recdouble
    (pick ~machine:t3d ~lib:Machine.T3d.pvm 16);
  Alcotest.check alg_t "T3D/PVM 3x3 -> dissemination" Ir.Coll.Dissem
    (pick ~machine:t3d ~lib:Machine.T3d.pvm 9);
  Alcotest.check alg_t "Paragon/csend 2x4 -> recursive doubling"
    Ir.Coll.Recdouble
    (pick ~machine:paragon ~lib:Machine.Paragon.nx_sync 8);
  Alcotest.check alg_t "Paragon/csend 3x3 -> dissemination" Ir.Coll.Dissem
    (pick ~machine:paragon ~lib:Machine.Paragon.nx_sync 9)

let cost_model_sane () =
  List.iter
    (fun lib ->
      List.iter
        (fun nprocs ->
          List.iter
            (fun alg ->
              let c = Opt.Collective.cost ~machine:t3d ~lib ~nprocs alg in
              Alcotest.(check bool)
                (Printf.sprintf "cost %s P=%d finite positive"
                   (Ir.Coll.alg_name alg) nprocs)
                true
                (Float.is_finite c && (c > 0.0 || nprocs = 1)))
            algs;
          (* ring serializes 2(P-1) rounds; any log-round algorithm must
             beat it once P > 2 under alpha-dominated costs *)
          if nprocs > 2 then
            Alcotest.(check bool)
              (Printf.sprintf "ring never optimal at P=%d" nprocs)
              true
              (Opt.Collective.cost ~machine:t3d ~lib ~nprocs Ir.Coll.Binomial
               < Opt.Collective.cost ~machine:t3d ~lib ~nprocs Ir.Coll.Ring))
        [ 1; 2; 4; 6; 8; 9; 12; 16 ])
    [ Machine.T3d.pvm; Machine.T3d.shmem ]

(** [Auto] must bake the cost search's pick into the transfer table. *)
let auto_picks_choice () =
  List.iter
    (fun (mesh, lib) ->
      let pr, pc = mesh in
      let nprocs = pr * pc in
      let want = Opt.Collective.choose ~machine:t3d ~lib nprocs in
      let config =
        { Opt.Config.pl_cum with Opt.Config.collective = Opt.Config.Auto }
      in
      let b = List.hd benches in
      let c = compile_bench ~config ~lib ~mesh b in
      let tagged =
        Array.to_list c.ir.Ir.Instr.transfers
        |> List.filter_map (fun (x : Ir.Transfer.t) -> x.Ir.Transfer.coll)
      in
      Alcotest.(check bool) "synthesized rounds exist" true (tagged <> []);
      List.iter
        (fun (d : Ir.Coll.desc) ->
          Alcotest.check alg_t "auto-picked algorithm" want d.Ir.Coll.cl_alg;
          Alcotest.(check int) "nprocs baked in" nprocs d.Ir.Coll.cl_nprocs)
        tagged)
    [ ((2, 2), Machine.T3d.pvm); ((3, 3), Machine.T3d.pvm);
      ((2, 2), Machine.T3d.shmem) ]

(* ------------------------------------------------------------------ *)
(* Schedcheck cleanliness                                              *)
(* ------------------------------------------------------------------ *)

(** Every benchmark x experiment row x forced algorithm (and auto) must
    be clean under both the structured checker and the flat checker. *)
let schedcheck_clean_case (b : Programs.Bench_def.t) =
  Alcotest.test_case b.Programs.Bench_def.name `Quick (fun () ->
      let modes =
        Opt.Config.Auto :: List.map (fun a -> Opt.Config.Forced a) algs
      in
      List.iter
        (fun (label, config, lib) ->
          List.iter
            (fun collective ->
              let config = { config with Opt.Config.collective } in
              let c = compile_bench ~config ~lib ~mesh:(2, 2) b in
              (match Analysis.Schedcheck.check c.ir with
              | [] -> ()
              | d :: _ ->
                  Alcotest.failf "%s/%s/%s: %s" b.Programs.Bench_def.name
                    label
                    (Opt.Config.collective_name collective)
                    (Analysis.Schedcheck.diag_to_string d));
              match Analysis.Schedcheck.check_flat c.flat with
              | [] -> ()
              | d :: _ ->
                  Alcotest.failf "%s/%s/%s (flat): %s"
                    b.Programs.Bench_def.name label
                    (Opt.Config.collective_name collective)
                    (Analysis.Schedcheck.diag_to_string d))
            modes)
        Report.Experiment.paper_rows)

(* ------------------------------------------------------------------ *)
(* Agreement with the opaque collective                                *)
(* ------------------------------------------------------------------ *)

let float_bits = Int64.bits_of_float

let check_env_bitident what (want : Runtime.Values.env)
    (got : Runtime.Values.env) =
  Alcotest.(check int)
    (what ^ ": env size") (Array.length want) (Array.length got);
  Array.iteri
    (fun i w ->
      match (w, got.(i)) with
      | Runtime.Values.VFloat a, Runtime.Values.VFloat b ->
          if float_bits a <> float_bits b then
            Alcotest.failf "%s: scalar %d = %h, want %h" what i b a
      | a, b ->
          if a <> b then Alcotest.failf "%s: scalar %d differs" what i)
    want

(** Compare every array cell of two runs of the same program. With
    [tolerance = 0.0] this demands bit-identity (NaN-aware either way
    via {!Commopt.cell_diverges}). *)
let check_arrays what ~tolerance (prog : Zpl.Prog.t)
    (want : Sim.Engine.result) (got : Sim.Engine.result) =
  Array.iteri
    (fun aid (info : Zpl.Prog.array_info) ->
      let w = Sim.Engine.gather want.Sim.Engine.engine aid in
      let g = Sim.Engine.gather got.Sim.Engine.engine aid in
      Zpl.Region.iter info.a_region (fun pt ->
          let want = Runtime.Store.get w pt
          and got = Runtime.Store.get g pt in
          if cell_diverges ~tolerance ~got ~want then
            Alcotest.failf "%s: %s[%s] = %.17g, want %.17g" what
              info.Zpl.Prog.a_name
              (String.concat "," (Array.to_list (Array.map string_of_int pt)))
              got want))
    prog.Zpl.Prog.arrays

(** SPMD replication: after any run the scalar environment — which now
    includes synthesized-collective results — must be bit-identical on
    every simulated processor. *)
let check_replication what (res : Sim.Engine.result) =
  let procs = Sim.Engine.procs res.Sim.Engine.engine in
  let e0 = Sim.Engine.proc_env procs.(0) in
  Array.iteri
    (fun rank p ->
      check_env_bitident
        (Printf.sprintf "%s: proc %d vs proc 0" what rank)
        e0 (Sim.Engine.proc_env p))
    procs

(** One benchmark under one library: simulate opaque and each forced
    algorithm on the same mesh; verify each against the sequential
    oracle, against the opaque run, and across processors. Ring and
    dissemination combine in rank order from the identity — exactly the
    opaque fold — so they must match opaque bit for bit even for [+<<];
    the tree algorithms reassociate, so sums get a tolerance (and
    convergence loops guarded by a reassociated sum may legally take
    different trips, so array comparison uses the oracle tolerance
    too). *)
let agreement_case (lib : Machine.Library.t) (b : Programs.Bench_def.t) =
  let lib_name = lib.Machine.Library.costs.Machine.Params.lib_name in
  Alcotest.test_case
    (Printf.sprintf "%s/%s" b.Programs.Bench_def.name lib_name)
    `Slow
    (fun () ->
      let mesh = (2, 2) in
      let opaque = compile_bench ~lib ~mesh b in
      let opaque_res = verify ~lib ~mesh ~tolerance:1e-9 opaque in
      check_replication "opaque" opaque_res;
      List.iter
        (fun alg ->
          let what =
            Printf.sprintf "%s/%s/%s" b.Programs.Bench_def.name lib_name
              (Ir.Coll.alg_name alg)
          in
          let c = compile_bench ~config:(forced alg) ~lib ~mesh b in
          let res = verify ~lib ~mesh ~tolerance:1e-9 c in
          check_replication what res;
          let rank_ordered =
            match alg with
            | Ir.Coll.Ring | Ir.Coll.Dissem -> true
            | Ir.Coll.Binomial | Ir.Coll.Recdouble -> false
          in
          let bitident = rank_ordered || not (has_sum_reduce b) in
          if bitident then begin
            check_env_bitident what
              (Sim.Engine.final_env opaque_res.Sim.Engine.engine)
              (Sim.Engine.final_env res.Sim.Engine.engine);
            check_arrays what ~tolerance:0.0 c.prog opaque_res res
          end
          else check_arrays what ~tolerance:1e-9 c.prog opaque_res res)
        algs)

(* ------------------------------------------------------------------ *)
(* Drain differentials: serial vs domains, wire vs legacy              *)
(* ------------------------------------------------------------------ *)

let drain_case (b : Programs.Bench_def.t) =
  Alcotest.test_case b.Programs.Bench_def.name `Slow (fun () ->
      let mesh = (2, 2) in
      List.iter
        (fun alg ->
          let what = Ir.Coll.alg_name alg in
          let c = compile_bench ~config:(forced alg) ~mesh b in
          let base = simulate ~mesh c in
          List.iter
            (fun (variant, res) ->
              let what = Printf.sprintf "%s %s" what variant in
              Alcotest.(check (float 0.0))
                (what ^ ": simulated time") base.Sim.Engine.time
                res.Sim.Engine.time;
              check_env_bitident what
                (Sim.Engine.final_env base.Sim.Engine.engine)
                (Sim.Engine.final_env res.Sim.Engine.engine);
              check_arrays what ~tolerance:0.0 c.prog base res)
            [ ("domains:3", simulate ~mesh ~domains:3 c);
              ("legacy", simulate ~mesh ~wire:false c);
              ("legacy/domains:3", simulate ~mesh ~wire:false ~domains:3 c) ])
        algs)

(* ------------------------------------------------------------------ *)
(* Degenerate meshes                                                   *)
(* ------------------------------------------------------------------ *)

(** P = 1 (all algorithms have zero rounds) and P = 2 strips. *)
let degenerate_meshes () =
  let b = List.hd benches in
  List.iter
    (fun mesh ->
      List.iter
        (fun alg ->
          let c = compile_bench ~config:(forced alg) ~mesh b in
          Alcotest.(check (list Alcotest.reject))
            (Printf.sprintf "clean at %dx%d" (fst mesh) (snd mesh))
            []
            (Analysis.Schedcheck.check c.ir);
          ignore (verify ~mesh ~tolerance:1e-9 c))
        algs)
    [ (1, 1); (1, 2); (2, 1); (1, 3) ]

(** The engine must reject a schedule synthesized for another mesh. *)
let nprocs_mismatch () =
  let b = List.hd benches in
  let c = compile_bench ~config:(forced Ir.Coll.Ring) ~mesh:(2, 2) b in
  match
    Sim.Engine.of_plans
      (Sim.Engine.plan ~machine:t3d ~lib:Machine.T3d.pvm ~pr:1 ~pc:2 c.flat)
  with
  | (_ : Sim.Engine.t) -> Alcotest.fail "mesh mismatch not rejected"
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        "message names the algorithm and both meshes" true
        (contains msg "ring" && contains msg "synthesized for 4 processors"
        && contains msg "1x2")

(* ------------------------------------------------------------------ *)
(* Pinned-seed random programs                                         *)
(* ------------------------------------------------------------------ *)

(** Tiny seeded generator of reduction-heavy mini-ZPL programs: a
    stencil update, one to three reductions of random ops feeding a
    scalar each, and a loop whose guard uses a reduced value. Every
    algorithm must stay schedcheck-clean and agree with the opaque run
    on every generated program. *)
let random_program st =
  let ops = [| "+"; "max"; "min" |] in
  let nred = 1 + Random.State.int st 3 in
  let reduces =
    List.init nred (fun i ->
        let op = ops.(Random.State.int st (Array.length ops)) in
        Printf.sprintf "  [R] s%d := %s<< (A + B * %d.0);" i op (i + 1))
  in
  let svars =
    String.concat ", " (List.init nred (fun i -> Printf.sprintf "s%d" i))
  in
  let shift = if Random.State.bool st then "A@east" else "A@south" in
  Printf.sprintf
    {|
constant n = 8;
region R    = [1..n, 1..n];
region BigR = [0..n+1, 0..n+1];
direction east  = [0, 1];
direction south = [1, 0];
var A, B : [BigR] float;
var t : int;
var %s : float;
procedure main();
begin
  [BigR] A := Index1 * 0.25 + Index2 * 0.125;
  [BigR] B := 1.0;
  for t := 1 to 3 do
    [R] B := 0.5 * (%s + B);
%s
    [R] A := B + s0 * 0.001;
  end;
end;
|}
    svars shift
    (String.concat "\n" reduces)

let random_programs_agree () =
  let st = Random.State.make [| 0x5eed; 42 |] in
  for _ = 1 to 8 do
    let src = random_program st in
    let mesh = (2, 2) in
    let opaque = compile ~mesh src in
    let opaque_res = verify ~mesh ~tolerance:1e-9 opaque in
    List.iter
      (fun alg ->
        let c = compile ~config:(forced alg) ~mesh src in
        Alcotest.(check (list Alcotest.reject))
          "random program schedcheck-clean" []
          (Analysis.Schedcheck.check c.ir);
        Alcotest.(check (list Alcotest.reject))
          "random program flat-clean" []
          (Analysis.Schedcheck.check_flat c.flat);
        let res = verify ~mesh ~tolerance:1e-9 c in
        check_replication (Ir.Coll.alg_name alg) res;
        check_arrays (Ir.Coll.alg_name alg) ~tolerance:1e-9 c.prog opaque_res
          res)
      algs
  done

(* ------------------------------------------------------------------ *)
(* Mutation: a mis-synthesized schedule must be caught                 *)
(* ------------------------------------------------------------------ *)

let is_coll_comm (transfers : Ir.Transfer.t array) = function
  | Ir.Instr.Comm (call, x) -> (
      match transfers.(x).Ir.Transfer.coll with
      | Some _ -> Some (call, x)
      | None -> None)
  | _ -> None

(** Drop instructions a structured mutator marks; recurses into control
    flow. [keep] decides per instruction. *)
let rec filter_code keep (code : Ir.Instr.instr list) =
  List.filter_map
    (function
      | Ir.Instr.Repeat (body, cond) ->
          Some (Ir.Instr.Repeat (filter_code keep body, cond))
      | Ir.Instr.For { var; lo; hi; step; body } ->
          Some (Ir.Instr.For { var; lo; hi; step; body = filter_code keep body })
      | Ir.Instr.If (cond, a, b) ->
          Some (Ir.Instr.If (cond, filter_code keep a, filter_code keep b))
      | i -> if keep i then Some i else None)
    code

(** Dropping one DR of a binomial round breaks the per-transfer call
    protocol; the diagnostic must name the algorithm and round via
    {!Ir.Transfer.describe}. *)
let mutation_dropped_dr () =
  let b = List.hd benches in
  let c = compile_bench ~config:(forced Ir.Coll.Binomial) ~mesh:(2, 2) b in
  let transfers = c.ir.Ir.Instr.transfers in
  let dropped = ref false in
  let keep i =
    match is_coll_comm transfers i with
    | Some (Ir.Instr.DR, _) when not !dropped ->
        dropped := true;
        false
    | _ -> true
  in
  let mutated = { c.ir with Ir.Instr.code = filter_code keep c.ir.Ir.Instr.code } in
  Alcotest.(check bool) "mutator found a DR to drop" true !dropped;
  match Analysis.Schedcheck.check mutated with
  | [] -> Alcotest.fail "dropped DR not caught"
  | diags ->
      Alcotest.(check bool) "diagnostic names the algorithm" true
        (List.exists
           (fun d -> contains (Analysis.Schedcheck.diag_to_string d) "binomial")
           diags)

(** Dropping a whole round (all four calls) is the classic dropped
    rendezvous; the collective checker counts rounds between the
    bookends and must report the missing one at [CollFin]. *)
let mutation_dropped_round () =
  let b = List.hd benches in
  let c = compile_bench ~config:(forced Ir.Coll.Binomial) ~mesh:(2, 2) b in
  let transfers = c.ir.Ir.Instr.transfers in
  (* drop every call of the first collective transfer *)
  let victim = ref (-1) in
  let keep i =
    match is_coll_comm transfers i with
    | Some (_, x) when !victim = -1 || !victim = x ->
        victim := x;
        false
    | _ -> true
  in
  let mutated = { c.ir with Ir.Instr.code = filter_code keep c.ir.Ir.Instr.code } in
  Alcotest.(check bool) "mutator found a round to drop" true (!victim >= 0);
  match
    List.filter
      (fun (d : Analysis.Schedcheck.diag) ->
        d.Analysis.Schedcheck.d_checker = Analysis.Schedcheck.Collective)
      (Analysis.Schedcheck.check mutated)
  with
  | [] -> Alcotest.fail "dropped round not caught by the collective checker"
  | diags ->
      Alcotest.(check bool) "diagnostic reports the dropped rendezvous" true
        (List.exists
           (fun d ->
             contains (Analysis.Schedcheck.diag_to_string d) "rounds")
           diags)

(** The same dropped-rendezvous mutation applied post-flattening must be
    caught by [check_flat] — the pass [zplc lint --flat] exposes. *)
let mutation_flat () =
  let b = List.hd benches in
  let c = compile_bench ~config:(forced Ir.Coll.Binomial) ~mesh:(2, 2) b in
  let transfers = c.flat.Ir.Flat.transfers in
  let victim = ref (-1) in
  (* replace the victim round's calls with address-preserving no-op
     jumps so every other jump target stays valid *)
  let ops =
    Array.mapi
      (fun i op ->
        match op with
        | Ir.Flat.FComm (_, x)
          when Option.is_some transfers.(x).Ir.Transfer.coll
               && (!victim = -1 || !victim = x) ->
            victim := x;
            Ir.Flat.FJump (i + 1)
        | op -> op)
      c.flat.Ir.Flat.ops
  in
  Alcotest.(check bool) "mutator found a flat round to drop" true
    (!victim >= 0);
  let mutated = { c.flat with Ir.Flat.ops } in
  match Analysis.Schedcheck.check_flat mutated with
  | [] -> Alcotest.fail "flat mutation not caught"
  | d :: _ ->
      Alcotest.(check bool) "flat diagnostic flagged" true
        (String.length (Analysis.Schedcheck.diag_to_string d) > 0)

(* ------------------------------------------------------------------ *)

(* The integer stage count is exact: 2^k is the least power of two
   covering n, and it agrees with the float log2/ceil computation it
   replaced over the whole range any plausible mesh reaches. *)
let ceil_log2_exact () =
  for n = 2 to 4100 do
    let k = Ir.Coll.ceil_log2 n in
    Alcotest.(check bool)
      (Printf.sprintf "2^k covers %d" n)
      true
      (1 lsl k >= n);
    Alcotest.(check bool)
      (Printf.sprintf "2^(k-1) does not cover %d" n)
      true
      (1 lsl (k - 1) < n);
    Alcotest.(check int)
      (Printf.sprintf "agrees with the float path at %d" n)
      (int_of_float (Float.ceil (Float.log2 (float_of_int n))))
      k
  done

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "collective"
    [ ( "cost-search",
        [ Alcotest.test_case "pick shifts across machines and meshes" `Quick
            cost_search_shifts;
          Alcotest.test_case "cost model sane" `Quick cost_model_sane;
          Alcotest.test_case "integer ceil_log2 exact" `Quick ceil_log2_exact;
          Alcotest.test_case "auto bakes the picked algorithm" `Quick
            auto_picks_choice ] );
      ("schedcheck-clean", List.map schedcheck_clean_case benches);
      ( "agrees-with-opaque (pvm)",
        List.map (agreement_case Machine.T3d.pvm) benches );
      ( "agrees-with-opaque (shmem)",
        List.map (agreement_case Machine.T3d.shmem) benches );
      ("drain-differential", List.map drain_case benches);
      ( "meshes",
        [ Alcotest.test_case "degenerate meshes" `Quick degenerate_meshes;
          Alcotest.test_case "nprocs mismatch rejected" `Quick nprocs_mismatch
        ] );
      ( "random-programs",
        [ Alcotest.test_case "pinned-seed property" `Slow
            random_programs_agree ] );
      ( "mutation",
        [ Alcotest.test_case "dropped DR caught" `Quick mutation_dropped_dr;
          Alcotest.test_case "dropped round caught" `Quick
            mutation_dropped_round;
          Alcotest.test_case "flat mutation caught" `Quick mutation_flat ] )
    ]
