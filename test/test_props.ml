(** Property-based tests over randomly generated stencil programs: the
    central guarantee — every optimizer configuration preserves program
    semantics on every machine model — plus structural invariants of the
    passes and the halo arithmetic, exercised across random layouts. *)

open Commopt

(* ------------------------------------------------------------------ *)
(* Random mini-ZPL stencil programs                                    *)
(*                                                                     *)
(* Arrays A..D over [0..n+1]^2; statements assign over [1..n] with     *)
(* random rhs built from shifted refs (offsets in {-1,0,1}^2), scalars *)
(* and constants. All shifts stay in bounds by construction, and       *)
(* coefficients keep values bounded. Statements sit inside the outer   *)
(* time loop, optionally nested (two levels deep) under if / for /     *)
(* repeat — so the optimizer, the simulator and schedcheck all see     *)
(* communication inside every control shape, including loops the       *)
(* passes must treat as opaque and branches whose arms disagree.       *)
(* ------------------------------------------------------------------ *)

type rstmt = { lhs : int; terms : (int * (int * int)) list }

type rnode =
  | RAssign of rstmt
  | RIf of bool * rnode list * rnode list
      (** condition [t < 2] (true on the first outer iteration only) or
          [t >= 2]; the else-arm may be empty *)
  | RFor of int * rnode list  (** [for sN := 1 to k do ... end] *)
  | RRepeat of int * rnode list
      (** [uN := 0; repeat uN := uN + 1; ... until uN >= k] *)

type rprog = { nodes : rnode list; loop_iters : int }

let arrays = [| "A"; "B"; "C"; "D" |]

let gen_offset = QCheck.Gen.(pair (int_range (-1) 1) (int_range (-1) 1))

let gen_stmt =
  QCheck.Gen.(
    let* lhs = int_range 0 3 in
    let* nterms = int_range 1 4 in
    let* terms = list_size (return nterms) (pair (int_range 0 3) gen_offset) in
    return { lhs; terms })

let gen_node =
  QCheck.Gen.(
    fix
      (fun self depth ->
        let leaf = map (fun s -> RAssign s) gen_stmt in
        if depth <= 0 then leaf
        else
          frequency
            [ (6, leaf);
              (1,
               let* c = bool in
               let* a = list_size (int_range 1 2) (self (depth - 1)) in
               let* b = list_size (int_range 0 2) (self (depth - 1)) in
               return (RIf (c, a, b)));
              (1,
               let* k = int_range 1 2 in
               let* body = list_size (int_range 1 2) (self (depth - 1)) in
               return (RFor (k, body)));
              (1,
               let* k = int_range 1 2 in
               let* body = list_size (int_range 1 2) (self (depth - 1)) in
               return (RRepeat (k, body))) ])
      2)

let gen_prog =
  QCheck.Gen.(
    let* nnodes = int_range 2 6 in
    let* nodes = list_size (return nnodes) gen_node in
    let* loop_iters = int_range 1 3 in
    return { nodes; loop_iters })

let prog_to_source (p : rprog) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    {|
constant n = 8;
region R = [1..n, 1..n];
region BigR = [0..n+1, 0..n+1];
var A, B, C, D : [BigR] float;
var t, s1, s2, u1, u2 : int;
procedure main();
begin
  [BigR] A := Index1 * 0.7 + Index2 * 0.3;
  [BigR] B := Index1 - Index2 * 0.5;
  [BigR] C := 1.0 + Index2 * 0.1;
  [BigR] D := 2.0 - Index1 * 0.1;
|};
  Buffer.add_string buf
    (Printf.sprintf "  for t := 1 to %d do\n" p.loop_iters);
  let sid = ref 0 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (* [level] numbers the nested loop variables (s1/u1 under the time
     loop, s2/u2 one deeper) so shadowing never arises *)
  let rec emit ind level nodes = List.iter (emit_node ind level) nodes
  and emit_node ind level = function
    | RAssign s ->
        let coef = 1.0 /. float_of_int (List.length s.terms) in
        let terms =
          List.map
            (fun (a, (d0, d1)) ->
              if d0 = 0 && d1 = 0 then Printf.sprintf "%s" arrays.(a)
              else Printf.sprintf "%s@[%d,%d]" arrays.(a) d0 d1)
            s.terms
        in
        bpf "%s[R] %s := 0.4 * %s + %.6f * (%s) + 0.01 * %d;\n" ind
          arrays.(s.lhs) arrays.(s.lhs) (0.5 *. coef)
          (String.concat " + " terms) !sid;
        incr sid
    | RIf (c, a, b) ->
        bpf "%sif t %s then\n" ind (if c then "< 2" else ">= 2");
        emit (ind ^ "  ") level a;
        if b <> [] then begin
          bpf "%selse\n" ind;
          emit (ind ^ "  ") level b
        end;
        bpf "%send;\n" ind
    | RFor (k, body) ->
        bpf "%sfor s%d := 1 to %d do\n" ind level k;
        emit (ind ^ "  ") (level + 1) body;
        bpf "%send;\n" ind
    | RRepeat (k, body) ->
        bpf "%su%d := 0;\n" ind level;
        bpf "%srepeat\n" ind;
        bpf "%s  u%d := u%d + 1;\n" ind level level;
        emit (ind ^ "  ") (level + 1) body;
        bpf "%suntil u%d >= %d;\n" ind level k
  in
  emit "    " 1 p.nodes;
  Buffer.add_string buf "  end;\nend;\n";
  Buffer.contents buf

let arb_prog =
  QCheck.make ~print:(fun p -> prog_to_source p) gen_prog

let all_configs =
  Opt.Config.[ baseline; rr_only; cc_cum; pl_cum; pl_max_latency ]

let oracle_distance prog (lib : Machine.Library.t) config ~pr ~pc =
  let ir = Opt.Passes.compile config prog in
  let res =
    Sim.Engine.run
      (Sim.Engine.of_plans
         (Sim.Engine.plan ~machine:Machine.T3d.machine ~lib ~pr ~pc
            (Ir.Flat.flatten ir)))
  in
  let oracle = Runtime.Seqexec.run prog in
  let worst = ref 0.0 in
  Array.iteri
    (fun aid (info : Zpl.Prog.array_info) ->
      let par = Sim.Engine.gather res.Sim.Engine.engine aid in
      let sq = oracle.Runtime.Seqexec.stores.(aid) in
      Zpl.Region.iter info.a_region (fun pt ->
          let a = Runtime.Store.get sq pt and b = Runtime.Store.get par pt in
          let d = Float.abs (a -. b) in
          if d > !worst then worst := d))
    prog.Zpl.Prog.arrays;
  !worst

(** The headline property: every optimization level, on both T3D
    libraries, computes bit-identical results to the sequential oracle. *)
let prop_optimizer_preserves_semantics =
  QCheck.Test.make ~name:"optimizer preserves semantics" ~count:30 arb_prog
    (fun p ->
      let prog = Zpl.Check.compile_string (prog_to_source p) in
      List.for_all
        (fun config ->
          List.for_all
            (fun lib -> oracle_distance prog lib config ~pr:2 ~pc:2 = 0.0)
            [ Machine.T3d.pvm; Machine.T3d.shmem ])
        all_configs)

(** Counts behave monotonically under the passes. *)
let prop_counts_monotone =
  QCheck.Test.make ~name:"static counts monotone" ~count:60 arb_prog (fun p ->
      let prog = Zpl.Check.compile_string (prog_to_source p) in
      let stat config = Ir.Count.static_count (Opt.Passes.compile config prog) in
      let base = stat Opt.Config.baseline in
      let rr = stat Opt.Config.rr_only in
      let cc = stat Opt.Config.cc_cum in
      let pl = stat Opt.Config.pl_cum in
      let maxlat = stat Opt.Config.pl_max_latency in
      rr <= base && cc <= rr && pl = cc && cc <= maxlat && maxlat <= rr)

(** Combining never changes the total member messages (volume proxy). *)
let prop_members_preserved =
  QCheck.Test.make ~name:"cc preserves member messages" ~count:60 arb_prog
    (fun p ->
      let prog = Zpl.Check.compile_string (prog_to_source p) in
      let members config =
        Ir.Count.static_member_count (Opt.Passes.compile config prog)
      in
      members Opt.Config.rr_only = members Opt.Config.cc_cum
      && members Opt.Config.rr_only = members Opt.Config.pl_cum)

(** Every schedule the pipeline emits — any configuration, any generated
    control shape — passes all four schedcheck checkers. Together with
    the mutation suite (test_schedcheck.ml), this keeps the verifier
    exactly calibrated: silent on everything the optimizer produces,
    loud on everything it must never produce. *)
let prop_schedcheck_accepts =
  QCheck.Test.make ~name:"schedcheck accepts every config" ~count:40 arb_prog
    (fun p ->
      let prog = Zpl.Check.compile_string (prog_to_source p) in
      List.for_all
        (fun config ->
          Analysis.Schedcheck.check (Opt.Passes.compile config prog) = [])
        all_configs)

(** Pass invariants hold on arbitrary inputs (would raise otherwise). *)
let prop_invariants =
  QCheck.Test.make ~name:"block invariants after passes" ~count:100 arb_prog
    (fun p ->
      let prog = Zpl.Check.compile_string (prog_to_source p) in
      List.iter
        (fun config ->
          Ir.Block.check_invariants
            (Opt.Passes.optimize config (Opt.Lower.lower prog)))
        all_configs;
      true)

(** On a uniform machine with PVM, optimized code is never slower —
    beyond pipelining's completion-wait bookkeeping, a fixed cost per
    dynamic transfer instance (measured under 6e-6 simulated seconds on
    the T3D model). On tiny random programs (a handful of transfers, one
    iteration, almost no compute) that overhead can't amortize, so the
    bound grants it explicitly: relative tolerance plus a per-instance
    allowance. Real benchmarks clear the plain inequality (test_report). *)
let prop_never_slower =
  QCheck.Test.make ~name:"optimized <= baseline time (PVM)" ~count:20 arb_prog
    (fun p ->
      let prog = Zpl.Check.compile_string (prog_to_source p) in
      let time config =
        let res =
          Sim.Engine.run
            (Sim.Engine.of_plans
               (Sim.Engine.plan ~machine:Machine.T3d.machine
                  ~lib:Machine.T3d.pvm ~pr:2 ~pc:2
                  (Ir.Flat.flatten (Opt.Passes.compile config prog))))
        in
        (res.Sim.Engine.time, Sim.Stats.dynamic_count res.Sim.Engine.stats)
      in
      let base, dyn = time Opt.Config.baseline in
      let pl, _ = time Opt.Config.pl_cum in
      pl <= (base *. 1.001) +. (1e-5 *. float_of_int dyn))

(* ------------------------------------------------------------------ *)
(* Abstract interpretation soundness                                    *)
(* ------------------------------------------------------------------ *)

(** Every concrete scalar value ever written during a sequential run —
    assignments, reductions, and loop-variable updates, observed through
    the {!Runtime.Seqexec} [on_scalar] hook — lies inside the abstract
    hull {!Analysis.Absint} computes for that scalar, on every
    optimization config (the analysis runs on the final IR, which the
    configs reshape). The final environment is checked against the hull
    too, since a scalar's last value is its initial value or some write. *)
let prop_absint_hull_sound =
  QCheck.Test.make ~name:"absint hull bounds every scalar trace" ~count:30
    arb_prog (fun p ->
      let prog = Zpl.Check.compile_string (prog_to_source p) in
      List.for_all
        (fun config ->
          let ir = Opt.Passes.compile config prog in
          let s = Analysis.Absint.analyze ir in
          let escapes = ref [] in
          let to_float = function
            | Runtime.Values.VFloat f -> f
            | Runtime.Values.VInt i -> float_of_int i
            | Runtime.Values.VBool b -> if b then 1.0 else 0.0
          in
          let on_scalar id v =
            let f = to_float v in
            if not (Analysis.Absint.contains s.Analysis.Absint.s_hull.(id) f)
            then escapes := (id, f) :: !escapes
          in
          let t = Runtime.Seqexec.run ~on_scalar prog in
          Array.iteri
            (fun id v ->
              if
                not
                  (Analysis.Absint.contains s.Analysis.Absint.s_hull.(id)
                     (to_float v))
              then escapes := (id, to_float v) :: !escapes)
            t.Runtime.Seqexec.env;
          if !escapes <> [] then
            QCheck.Test.fail_reportf "escaped hull under %s: %s"
              (Opt.Config.name config)
              (String.concat ", "
                 (List.map
                    (fun (id, f) ->
                      Printf.sprintf "%s=%g"
                        (Zpl.Prog.scalar_info prog id).Zpl.Prog.s_name f)
                    !escapes))
          else true)
        all_configs)

(** Commvol's static bounds and exact predictions agree with the engine
    on random control shapes across all six paper rows: per-processor
    message/byte counters match the coefficient model exactly, static
    intervals bracket every measured value, and the paper's dynamic
    count is predicted exactly ([Run.Predict.verify] checks all of it). *)
let prop_commvol_engine_validated =
  QCheck.Test.make ~name:"commvol bounds validated by the engine" ~count:10
    arb_prog (fun p ->
      let src = prog_to_source p in
      List.for_all
        (fun (label, config, lib) ->
          let spec =
            Run.Spec.(
              default src |> with_config config |> with_lib lib
              |> with_mesh 2 2)
          in
          let t = Run.Predict.analyze spec in
          match Run.Predict.verify t with
          | [] -> true
          | errs ->
              QCheck.Test.fail_reportf "[%s]:\n%s" label
                (String.concat "\n" errs))
        Report.Experiment.paper_rows)

(* ------------------------------------------------------------------ *)
(* Halo duality across random layouts and offsets                      *)
(* ------------------------------------------------------------------ *)

let arb_halo_case =
  QCheck.make
    ~print:(fun (pr, pc, n, (d0, d1)) ->
      Printf.sprintf "mesh %dx%d, n=%d, off=(%d,%d)" pr pc n d0 d1)
    QCheck.Gen.(
      let* pr = int_range 1 4 in
      let* pc = int_range 1 4 in
      let* n = int_range 8 20 in
      let* off = pair (int_range (-2) 2) (int_range (-2) 2) in
      return (pr, pc, n, off))

let prop_halo_duality =
  QCheck.Test.make ~name:"halo send/recv duality" ~count:200 arb_halo_case
    (fun (pr, pc, n, off) ->
      QCheck.assume (off <> (0, 0));
      let space = Zpl.Region.make [ (0, n); (0, n) ] in
      let l = Runtime.Layout.make ~pr ~pc space in
      let info =
        { Zpl.Prog.a_id = 0; a_name = "A"; a_region = space; a_rank = 2 }
      in
      List.for_all
        (fun p ->
          List.for_all
            (fun (rp : Runtime.Halo.piece) ->
              let sends = Runtime.Halo.send_pieces l info ~p:rp.partner ~off in
              List.exists
                (fun (s : Runtime.Halo.piece) ->
                  s.partner = p && Zpl.Region.equal s.rect rp.rect)
                sends)
            (Runtime.Halo.recv_pieces l info ~p ~off))
        (List.init (Runtime.Layout.nprocs l) Fun.id))

(** Every ghost cell needed is covered exactly once by the recv pieces. *)
let prop_halo_covers =
  QCheck.Test.make ~name:"halo pieces tile the ghost region" ~count:200
    arb_halo_case (fun (pr, pc, n, off) ->
      QCheck.assume (off <> (0, 0));
      let space = Zpl.Region.make [ (0, n); (0, n) ] in
      let l = Runtime.Layout.make ~pr ~pc space in
      let info =
        { Zpl.Prog.a_id = 0; a_name = "A"; a_region = space; a_rank = 2 }
      in
      List.for_all
        (fun p ->
          let own = Runtime.Halo.owned_of l info p in
          if Zpl.Region.is_empty own then true
          else begin
            let own2 = Zpl.Region.(make [ ((dim own 0).lo, (dim own 0).hi);
                                          ((dim own 1).lo, (dim own 1).hi) ]) in
            let needed =
              Zpl.Region.inter (Zpl.Region.shift own2 [| fst off; snd off |]) space
            in
            let pieces = Runtime.Halo.recv_pieces l info ~p ~off in
            (* count coverage of every needed-but-not-owned cell *)
            let ok = ref true in
            Zpl.Region.iter needed (fun pt ->
                let covers =
                  List.length
                    (List.filter
                       (fun (pc_ : Runtime.Halo.piece) ->
                         Zpl.Region.contains_point pc_.rect pt)
                       pieces)
                in
                let owned_here = Zpl.Region.contains_point own2 pt in
                if owned_here then (if covers <> 0 then ok := false)
                else if covers <> 1 then ok := false);
            !ok
          end)
        (List.init (Runtime.Layout.nprocs l) Fun.id))

(* ------------------------------------------------------------------ *)
(* Row-compiled kernels vs the per-point oracle                        *)
(*                                                                     *)
(* Direct-AST differential tests: random regions of rank 1..3, random  *)
(* offsets in {-1,0,1}^rank, random expression trees. The row path     *)
(* must be bitwise identical to the per-point fallback — including     *)
(* self-referencing statements that exercise the buffered write modes. *)
(* ------------------------------------------------------------------ *)

let narrays = 3

let bits = Int64.bits_of_float

(* Deterministic pseudo-random fill so failures reproduce from the seed. *)
let fill_store (s : Runtime.Store.t) seed =
  Runtime.Store.fill_flat s (fun i ->
      (float_of_int (((i * 7919) + (seed * 104729)) mod 1999) /. 97.0) -. 10.0)

let grow1 (r : Zpl.Region.t) : Zpl.Region.t =
  Array.map
    (fun { Zpl.Region.lo; hi } -> { Zpl.Region.lo = lo - 1; hi = hi + 1 })
    r

let mk_store aid rank (alloc : Zpl.Region.t) seed =
  let info =
    { Zpl.Prog.a_id = aid; a_name = Printf.sprintf "S%d" aid;
      a_region = alloc; a_rank = rank }
  in
  let s = Runtime.Store.make info ~owned:alloc ~fringe:0 in
  fill_store s (seed + aid);
  s

type kcase = {
  krank : int;
  kregion : Zpl.Region.t;  (** iteration region; stores alloc [grow1] of it *)
  klhs : int;
  krhs : Zpl.Prog.aexpr;
  kseed : int;
}

let gen_aexpr rank =
  QCheck.Gen.(
    let gen_off = array_size (return rank) (int_range (-1) 1) in
    let leaf =
      frequency
        [ (2,
           map (fun i -> Zpl.Prog.AConst (float_of_int i /. 8.0))
             (int_range (-16) 16));
          (1, map (fun d -> Zpl.Prog.AIndex d) (int_range 0 (rank - 1)));
          (1, map (fun i -> Zpl.Prog.AScalar i) (int_range 0 1));
          (4,
           map2
             (fun a off -> Zpl.Prog.ARef (a, off))
             (int_range 0 (narrays - 1))
             gen_off) ]
    in
    fix
      (fun self depth ->
        if depth <= 0 then leaf
        else
          frequency
            [ (2, leaf);
              (4,
               map3
                 (fun op a b -> Zpl.Prog.ABin (op, a, b))
                 (oneofl Zpl.Ast.[ Add; Sub; Mul; Div ])
                 (self (depth - 1)) (self (depth - 1)));
              (1,
               map (fun a -> Zpl.Prog.AUn (Zpl.Ast.Neg, a)) (self (depth - 1)));
              (1,
               map2
                 (fun f a -> Zpl.Prog.ACall (f, [ a ]))
                 (oneofl [ "abs"; "sqrt"; "sin" ])
                 (self (depth - 1)));
              (1,
               map3
                 (fun f a b -> Zpl.Prog.ACall (f, [ a; b ]))
                 (oneofl [ "min"; "max" ])
                 (self (depth - 1)) (self (depth - 1))) ])
      3)

let gen_kregion rank =
  QCheck.Gen.(
    let* dims = list_size (return rank) (pair (int_range (-2) 2) (int_range 1 5)) in
    return (Zpl.Region.make (List.map (fun (lo, sz) -> (lo, lo + sz - 1)) dims)))

let gen_kcase =
  QCheck.Gen.(
    let* krank = int_range 1 3 in
    let* kregion = gen_kregion krank in
    let* klhs = int_range 0 (narrays - 1) in
    let* krhs = gen_aexpr krank in
    let* kseed = int_range 0 9999 in
    return { krank; kregion; klhs; krhs; kseed })

let arb_kcase =
  QCheck.make
    ~print:(fun c ->
      Printf.sprintf "rank %d, region %s, S%d := %s, seed %d" c.krank
        (Zpl.Region.to_string c.kregion)
        c.klhs
        (Zpl.Prog.show_aexpr c.krhs)
        c.kseed)
    gen_kcase

let kscalar i = [| 0.5; -1.25 |].(i)

(* Plans are store-agnostic: compile against [stores] (any store of the
   right geometry works), then bind the actual stores and scalars into
   an env once every plan of the set is built. *)
let kcase_stores (c : kcase) =
  let alloc = grow1 c.kregion in
  let stores =
    Array.init narrays (fun aid -> mk_store aid c.krank alloc c.kseed)
  in
  let ws = Runtime.Kernel.make_ws () in
  let rc = { Runtime.Kernel.rstore = (fun aid -> stores.(aid)); rws = ws } in
  let mkenv () =
    Runtime.Kernel.make_env ~stores ~scalar:kscalar
      (Runtime.Kernel.ws_spec ws)
  in
  (stores, rc, mkenv)

let exec_kcase ~row (c : kcase) =
  let stores, rc, mkenv = kcase_stores c in
  let a =
    { Zpl.Prog.region = Zpl.Prog.dregion_of_region c.kregion;
      lhs = c.klhs; rhs = c.krhs; flops = 0 }
  in
  let plan = Runtime.Kernel.plan_assign ~row rc a in
  let cells =
    Runtime.Kernel.exec_plan plan ~env:(mkenv ()) ~lhs:stores.(c.klhs)
      ~region:c.kregion
  in
  ( cells,
    Array.map
      (fun (s : Runtime.Store.t) -> Array.map bits (Runtime.Store.to_array s))
      stores )

(** Row-compiled assignments produce bitwise-identical stores and cell
    counts to the per-point interpreter, across self-references (both
    buffered write modes), fallbacks and all ranks. *)
let prop_row_kernel_bitwise =
  QCheck.Test.make ~name:"row kernels == per-point kernels (bitwise)"
    ~count:300 arb_kcase (fun c ->
      exec_kcase ~row:true c = exec_kcase ~row:false c)

(** Same for reductions: identical partials (bitwise) and cell counts. *)
let prop_row_reduce_bitwise =
  QCheck.Test.make ~name:"row reductions == per-point (bitwise)" ~count:200
    (QCheck.pair arb_kcase
       (QCheck.oneofl ~print:Zpl.Ast.show_redop
          Zpl.Ast.[ RSum; RMax; RMin; RProd ]))
    (fun (c, op) ->
      let run ~row =
        let _, rc, mkenv = kcase_stores c in
        let r =
          { Zpl.Prog.r_lhs = 0; r_op = op;
            r_region = Zpl.Prog.dregion_of_region c.kregion;
            r_rhs = c.krhs; r_flops = 0 }
        in
        let plan = Runtime.Kernel.plan_reduce ~row rc r in
        let v, cells =
          Runtime.Kernel.exec_rplan plan ~env:(mkenv ()) ~region:c.kregion op
        in
        (bits v, cells)
      in
      run ~row:true = run ~row:false)

(** The row path must actually engage on the paper's stencil shapes —
    compile-to-row coverage, not just agreement when it happens to fire. *)
let test_row_plan_engages () =
  let region = Zpl.Region.make [ (1, 8); (1, 8) ] in
  let c seed lhs rhs = { krank = 2; kregion = region; klhs = lhs; krhs = rhs; kseed = seed } in
  let stencil =
    (* 0.25 * (S0@[0,1] + S0@[0,-1] + S0@[1,0] + S0@[-1,0]) *)
    Zpl.Prog.(
      ABin
        ( Zpl.Ast.Mul, AConst 0.25,
          ABin
            ( Zpl.Ast.Add,
              ABin (Zpl.Ast.Add, ARef (0, [| 0; 1 |]), ARef (0, [| 0; -1 |])),
              ABin (Zpl.Ast.Add, ARef (0, [| 1; 0 |]), ARef (0, [| -1; 0 |])) ) ))
  in
  List.iter
    (fun (name, case) ->
      let stores, rc, _ = kcase_stores case in
      ignore stores;
      let a =
        { Zpl.Prog.region = Zpl.Prog.dregion_of_region case.kregion;
          lhs = case.klhs; rhs = case.krhs; flops = 0 }
      in
      Alcotest.(check bool) name true
        (Runtime.Kernel.plan_is_row (Runtime.Kernel.plan_assign rc a));
      Alcotest.(check bool) (name ^ " (forced fallback)") false
        (Runtime.Kernel.plan_is_row (Runtime.Kernel.plan_assign ~row:false rc a)))
    [ ("jacobi-style stencil, direct write", c 1 1 stencil);
      ("jacobi-style stencil, self-update", c 2 0 stencil);
      ("index expression", c 3 0 Zpl.Prog.(ABin (Zpl.Ast.Add, AIndex 0, AIndex 1)));
      ("scalar broadcast", c 4 2 (Zpl.Prog.AScalar 0)) ]

(** Row-wise [extract]/[inject] agree with a per-point reference and
    roundtrip without disturbing cells outside the rectangle. *)
let prop_extract_inject_rows =
  QCheck.Test.make ~name:"extract/inject row path == per-point" ~count:300
    (QCheck.make
       ~print:(fun (alloc, rect, seed) ->
         Printf.sprintf "alloc %s, rect %s, seed %d"
           (Zpl.Region.to_string alloc) (Zpl.Region.to_string rect) seed)
       QCheck.Gen.(
         let* rank = int_range 1 3 in
         let* alloc = gen_kregion rank in
         let* rect =
           Array.to_list alloc
           |> List.map (fun { Zpl.Region.lo; hi } ->
                  let* l = int_range lo hi in
                  let* h = int_range l hi in
                  return (l, h))
           |> flatten_l
         in
         let* seed = int_range 0 9999 in
         return (alloc, Zpl.Region.make rect, seed)))
    (fun (alloc, rect, seed) ->
      let rank = Zpl.Region.rank alloc in
      let s = mk_store 0 rank alloc seed in
      (* reference extract, point by point *)
      let ref_buf = Array.make (Zpl.Region.size rect) 0.0 in
      let k = ref 0 in
      Zpl.Region.iter rect (fun p ->
          ref_buf.(!k) <- Runtime.Store.get s p;
          incr k);
      let fast = Runtime.Store.buf_to_array (Runtime.Store.extract s rect) in
      (* reference inject into a copy of a second store *)
      let s2 = mk_store 0 rank alloc (seed + 17) in
      let expected = Runtime.Store.to_array s2 in
      let k = ref 0 in
      Zpl.Region.iter rect (fun p ->
          expected.(Runtime.Store.index s2 p) <- fast.(!k);
          incr k);
      Runtime.Store.inject s2 rect (Runtime.Store.buf_of_array fast);
      Array.map bits fast = Array.map bits ref_buf
      && Array.map bits (Runtime.Store.to_array s2) = Array.map bits expected)

(** End to end: the sequential executor computes bitwise-identical stores
    across all four configurations — fused rows with CSE (default),
    fused without CSE, unfused rows, and the per-point interpreter — on
    random mini-ZPL programs. *)
let seqexec_fingerprint ?row_path ?fuse ?cse prog =
  let t = Runtime.Seqexec.run ?row_path ?fuse ?cse prog in
  ( t.Runtime.Seqexec.steps,
    t.Runtime.Seqexec.cells,
    Array.map
      (fun (s : Runtime.Store.t) -> Array.map bits (Runtime.Store.to_array s))
      t.Runtime.Seqexec.stores )

let prop_seqexec_row_path =
  QCheck.Test.make
    ~name:"seqexec fused == unfused == per-point (bitwise)" ~count:25 arb_prog
    (fun p ->
      let prog = Zpl.Check.compile_string (prog_to_source p) in
      let fused = seqexec_fingerprint ~row_path:true ~fuse:true prog in
      let no_cse = seqexec_fingerprint ~row_path:true ~fuse:true ~cse:false prog in
      let unfused = seqexec_fingerprint ~row_path:true ~fuse:false prog in
      let point = seqexec_fingerprint ~row_path:false prog in
      fused = no_cse && no_cse = unfused && unfused = point)

(* ------------------------------------------------------------------ *)
(* Cross-statement CSE in fused row kernels                            *)
(*                                                                     *)
(* The general generator above writes the same arrays it reads, which  *)
(* mostly disqualifies subterms from hoisting (a CSE'd term must read  *)
(* no array the fused group writes). This generator is biased the      *)
(* other way: statements write only E/F/G and draw their right-hand    *)
(* sides from a 4-entry pool of neighbor sums over A..D, so adjacent   *)
(* statements fuse AND repeat subterms — the CSE stage fires on most   *)
(* draws, and must stay bitwise-invisible on every one.                *)
(* ------------------------------------------------------------------ *)

let cse_lhs = [| "E"; "F"; "G" |]

let cse_pool =
  [| "(A@[0,1] + A@[0,-1])"; "(B@[1,0] + B@[-1,0])";
     "(C@[0,1] + C@[1,0])"; "(D@[-1,0] + D@[0,-1])" |]

type cprog = { cterms : (int * int) list; citers : int }
(** one statement per list element: [R] E/F/G := c*(pool t1) + c'*(pool t2) *)

let gen_cprog =
  QCheck.Gen.(
    let* nstmts = int_range 2 3 in
    let* cterms =
      list_size (return nstmts) (pair (int_range 0 3) (int_range 0 3))
    in
    let* citers = int_range 1 2 in
    return { cterms; citers })

let cprog_to_source (p : cprog) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    {|
constant n = 8;
region R = [1..n, 1..n];
region BigR = [0..n+1, 0..n+1];
var A, B, C, D, E, F, G : [BigR] float;
var t : int;
procedure main();
begin
  [BigR] A := Index1 * 0.7 + Index2 * 0.3;
  [BigR] B := Index1 - Index2 * 0.5;
  [BigR] C := 1.0 + Index2 * 0.1;
  [BigR] D := 2.0 - Index1 * 0.1;
|};
  Buffer.add_string buf (Printf.sprintf "  for t := 1 to %d do\n" p.citers);
  List.iteri
    (fun i (t1, t2) ->
      Buffer.add_string buf
        (Printf.sprintf "    [R] %s := %.2f * %s + %.2f * %s + 0.01 * %d;\n"
           cse_lhs.(i)
           (0.5 /. float_of_int (i + 1))
           cse_pool.(t1)
           (0.25 /. float_of_int (i + 1))
           cse_pool.(t2) i))
    p.cterms;
  Buffer.add_string buf "  end;\nend;\n";
  Buffer.contents buf

let arb_cprog = QCheck.make ~print:cprog_to_source gen_cprog

let prop_seqexec_cse =
  QCheck.Test.make ~name:"seqexec CSE'd == no-CSE == per-point (bitwise)"
    ~count:40 arb_cprog (fun p ->
      let prog = Zpl.Check.compile_string (cprog_to_source p) in
      let cse = seqexec_fingerprint ~row_path:true ~fuse:true ~cse:true prog in
      let no_cse =
        seqexec_fingerprint ~row_path:true ~fuse:true ~cse:false prog
      in
      let point = seqexec_fingerprint ~row_path:false prog in
      cse = no_cse && no_cse = point)

(** The CSE stage must actually engage on the paper's shapes — a fused
    TOMCATV-like pair sharing a neighbor sum hoists at least one row
    temporary, executes bit-identically to the per-point oracle, and
    compiles to zero temporaries (same bits) under [~cse:false]. *)
let test_cse_plan_engages () =
  let region = Zpl.Region.make [ (1, 8); (1, 8) ] in
  let shared =
    Zpl.Prog.(ABin (Zpl.Ast.Add, ARef (0, [| 0; 1 |]), ARef (0, [| 0; -1 |])))
  in
  let rhs c =
    Zpl.Prog.(
      ABin
        ( Zpl.Ast.Add,
          ABin (Zpl.Ast.Mul, AConst c, shared),
          ABin (Zpl.Ast.Mul, AConst (c /. 2.0), ARef (0, [| 1; 0 |])) ))
  in
  let stmt lhs c =
    { Zpl.Prog.region = Zpl.Prog.dregion_of_region region; lhs; rhs = rhs c;
      flops = 0 }
  in
  let group = [| stmt 1 0.25; stmt 2 0.75 |] in
  let mk () =
    let alloc = grow1 region in
    let stores = Array.init narrays (fun aid -> mk_store aid 2 alloc 77) in
    let ws = Runtime.Kernel.make_ws () in
    let rc =
      { Runtime.Kernel.rstore = (fun aid -> stores.(aid)); rws = ws }
    in
    let mkenv () =
      Runtime.Kernel.make_env ~stores ~scalar:kscalar
        (Runtime.Kernel.ws_spec ws)
    in
    (stores, rc, mkenv)
  in
  let fingerprint stores =
    Array.map
      (fun (s : Runtime.Store.t) -> Array.map bits (Runtime.Store.to_array s))
      stores
  in
  (* per-point oracle, statement by statement *)
  let stores_pt, rc_pt, mkenv_pt = mk () in
  let plans_pt =
    Array.map (Runtime.Kernel.plan_assign ~row:false rc_pt) group
  in
  let env_pt = mkenv_pt () in
  Array.iteri
    (fun i (a : Zpl.Prog.assign_a) ->
      ignore
        (Runtime.Kernel.exec_plan plans_pt.(i) ~env:env_pt
           ~lhs:stores_pt.(a.Zpl.Prog.lhs) ~region))
    group;
  (* fused with CSE: a temp must be hoisted, bits must match *)
  let stores_f, rc_f, mkenv_f = mk () in
  (match Runtime.Kernel.plan_fused rc_f group with
  | None -> Alcotest.fail "group should row-compile"
  | Some fp ->
      Alcotest.(check bool) "hoists a row temporary" true
        (Runtime.Kernel.fused_temp_count fp > 0);
      Alcotest.(check int) "cells"
        (2 * Zpl.Region.size region)
        (Runtime.Kernel.exec_fused fp ~env:(mkenv_f ()) ~region));
  Alcotest.(check bool) "CSE'd == per-point (bitwise)" true
    (fingerprint stores_f = fingerprint stores_pt);
  (* --no-cse: zero temps, same bits *)
  let stores_n, rc_n, mkenv_n = mk () in
  (match Runtime.Kernel.plan_fused ~cse:false rc_n group with
  | None -> Alcotest.fail "group should row-compile without CSE"
  | Some fp ->
      Alcotest.(check int) "no temps under --no-cse" 0
        (Runtime.Kernel.fused_temp_count fp);
      ignore (Runtime.Kernel.exec_fused fp ~env:(mkenv_n ()) ~region));
  Alcotest.(check bool) "no-CSE fused == per-point (bitwise)" true
    (fingerprint stores_n = fingerprint stores_pt)

(** Extract/inject round-trips exactly at Bigarray sub-view boundaries:
    full fringe rows/columns of a fringed store, and rank-3 rectangles
    flush against the never-grown innermost dimension. *)
let test_extract_inject_boundaries () =
  let check_roundtrip name (s : Runtime.Store.t) rect =
    fill_store s 42;
    let before = Runtime.Store.to_array s in
    let b = Runtime.Store.extract s rect in
    Runtime.Store.inject s rect b;
    Alcotest.(check bool) (name ^ ": store untouched") true
      (Array.map bits before = Array.map bits (Runtime.Store.to_array s));
    Alcotest.(check int) (name ^ ": size") (Zpl.Region.size rect)
      (Bigarray.Array1.dim b)
  in
  let info2 =
    { Zpl.Prog.a_id = 0; a_name = "A";
      a_region = Zpl.Region.make [ (0, 9); (0, 9) ]; a_rank = 2 }
  in
  let s = Runtime.Store.make info2 ~owned:(Zpl.Region.make [ (2, 5); (2, 5) ])
      ~fringe:1 in
  (* alloc is [1..6, 1..6]: rows/cols at both fringe edges *)
  check_roundtrip "west fringe column" s (Zpl.Region.make [ (1, 6); (1, 1) ]);
  check_roundtrip "east fringe column" s (Zpl.Region.make [ (1, 6); (6, 6) ]);
  check_roundtrip "north fringe row" s (Zpl.Region.make [ (1, 1); (1, 6) ]);
  check_roundtrip "full alloc" s (Zpl.Region.make [ (1, 6); (1, 6) ]);
  let info3 =
    { Zpl.Prog.a_id = 0; a_name = "Q";
      a_region = Zpl.Region.make [ (1, 4); (1, 4); (1, 6) ]; a_rank = 3 }
  in
  let q =
    Runtime.Store.make info3
      ~owned:(Zpl.Region.make [ (1, 2); (1, 2); (1, 6) ])
      ~fringe:1
  in
  (* dim 2 is never grown: rectangles flush against both of its edges *)
  check_roundtrip "rank-3, full dim 2" q
    (Zpl.Region.make [ (0, 3); (1, 1); (1, 6) ]);
  check_roundtrip "rank-3, dim-2 lo edge" q
    (Zpl.Region.make [ (1, 2); (1, 2); (1, 1) ]);
  check_roundtrip "rank-3, dim-2 hi edge" q
    (Zpl.Region.make [ (1, 2); (1, 2); (6, 6) ])

(* ------------------------------------------------------------------ *)
(* Simulator: fusion and domain-parallel drain preserve everything     *)
(* ------------------------------------------------------------------ *)

let engine_fingerprint ?cse ~fuse ~domains prog =
  let ir = Opt.Passes.compile Opt.Config.pl_cum prog in
  let res =
    Sim.Engine.run
      (Sim.Engine.of_plans ~domains
         (Sim.Engine.plan ~fuse ?cse ~machine:Machine.T3d.machine
            ~lib:Machine.T3d.pvm ~pr:2 ~pc:2 (Ir.Flat.flatten ir)))
  in
  ( bits res.Sim.Engine.time,
    res.Sim.Engine.stats,
    Array.mapi
      (fun aid _ ->
        Array.map bits
          (Runtime.Store.to_array (Sim.Engine.gather res.Sim.Engine.engine aid)))
      prog.Zpl.Prog.arrays )

(** Kernel fusion (with and without CSE) and the domain-parallel drain
    all leave simulated time, statistics and every array bit-identical
    to the serial, unfused engine. *)
let prop_engine_fuse_parallel =
  QCheck.Test.make
    ~name:"engine: fused/parallel == unfused/serial (bitwise)" ~count:12
    arb_prog (fun p ->
      let prog = Zpl.Check.compile_string (prog_to_source p) in
      let base = engine_fingerprint ~fuse:false ~domains:1 prog in
      base = engine_fingerprint ~fuse:true ~domains:1 prog
      && base = engine_fingerprint ~fuse:true ~cse:false ~domains:1 prog
      && base = engine_fingerprint ~fuse:true ~domains:3 prog)

(** The engine's fused plans with CSE stay bit-identical on programs
    engineered so the hoisting stage actually fires (see [arb_cprog]). *)
let prop_engine_cse =
  QCheck.Test.make ~name:"engine: CSE'd == no-CSE (bitwise)" ~count:10
    arb_cprog (fun p ->
      let prog = Zpl.Check.compile_string (cprog_to_source p) in
      engine_fingerprint ~fuse:true ~cse:true ~domains:1 prog
      = engine_fingerprint ~fuse:true ~cse:false ~domains:1 prog)

(* ------------------------------------------------------------------ *)
(* Wire-plan comm runtime == legacy extract/inject comm path           *)
(* ------------------------------------------------------------------ *)

let wire_fingerprint ~wire ~domains (config, lib) prog =
  let ir = Opt.Passes.compile config prog in
  let res =
    Sim.Engine.run
      (Sim.Engine.of_plans ~domains
         (Sim.Engine.plan ~wire ~machine:Machine.T3d.machine ~lib ~pr:2 ~pc:2
            (Ir.Flat.flatten ir)))
  in
  ( bits res.Sim.Engine.time,
    res.Sim.Engine.stats,
    Array.mapi
      (fun aid _ ->
        Array.map bits
          (Runtime.Store.to_array (Sim.Engine.gather res.Sim.Engine.engine aid)))
      prog.Zpl.Prog.arrays,
    Sim.Engine.final_env res.Sim.Engine.engine )

(** The pre-compiled wire-plan communication runtime (pooled staging
    buffers, ring mailboxes) is observationally identical to the legacy
    extract/inject path: simulated time, every statistic, every gathered
    array, and the final scalar environment match bit for bit — across
    all six paper experiment rows (every optimization config and both
    libraries, so cc-combined multi-array messages and SHMEM rendezvous
    tokens are all exercised), and under the domain-parallel drain. *)
let prop_wire_equals_legacy =
  QCheck.Test.make ~name:"engine: wire plans == legacy comm (bitwise)"
    ~count:10 arb_prog (fun p ->
      let prog = Zpl.Check.compile_string (prog_to_source p) in
      List.for_all
        (fun (_, config, lib) ->
          let legacy = wire_fingerprint ~wire:false ~domains:1 (config, lib) prog in
          legacy = wire_fingerprint ~wire:true ~domains:1 (config, lib) prog
          && legacy = wire_fingerprint ~wire:true ~domains:3 (config, lib) prog)
        Report.Experiment.paper_rows)

(* ------------------------------------------------------------------ *)
(* Domain-parallel experiment grid == serial grid                      *)
(* ------------------------------------------------------------------ *)

let project_grid (rs : Report.Experiment.bench_result list) =
  List.map
    (fun (r : Report.Experiment.bench_result) ->
      ( r.Report.Experiment.bench.Programs.Bench_def.name,
        List.map
          (fun (row : Report.Experiment.row) ->
            (row.label, row.static_count, row.dynamic_count, bits row.time))
          r.Report.Experiment.rows ))
    rs

let test_grid_parallel_deterministic () =
  let serial = project_grid (Report.Experiment.grid ~scale:`Test ~domains:1 ()) in
  let par = project_grid (Report.Experiment.grid ~scale:`Test ~domains:4 ()) in
  Alcotest.(check bool) "parallel grid == serial grid" true (serial = par)

(* Run every property on a fixed seed: the program generator can draw
   adversarial cases for the statistical properties (the optimizer's
   never-slower bound is a heuristic, not a theorem), and tier-1 must be
   deterministic. Exploration stays one [QCHECK_SEED=n dune runtest]
   away — the env var takes precedence inside qcheck-alcotest. *)
let to_alcotest t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed1 |]) t

let () =
  Alcotest.run "properties"
    [ ( "optimizer",
        List.map to_alcotest
          [ prop_optimizer_preserves_semantics; prop_counts_monotone;
            prop_members_preserved; prop_schedcheck_accepts;
            prop_invariants; prop_never_slower ] );
      ( "analysis",
        List.map to_alcotest
          [ prop_absint_hull_sound; prop_commvol_engine_validated ] );
      ( "halo",
        List.map to_alcotest [ prop_halo_duality; prop_halo_covers ] );
      ( "row engine",
        List.map to_alcotest
          [ prop_row_kernel_bitwise; prop_row_reduce_bitwise;
            prop_extract_inject_rows; prop_seqexec_row_path;
            prop_seqexec_cse; prop_engine_fuse_parallel; prop_engine_cse;
            prop_wire_equals_legacy ]
        @ [ Alcotest.test_case "stencil compiles to row plan" `Quick
              test_row_plan_engages;
            Alcotest.test_case "fused CSE engages and matches per-point"
              `Quick test_cse_plan_engages;
            Alcotest.test_case "extract/inject at view boundaries" `Quick
              test_extract_inject_boundaries;
            Alcotest.test_case "parallel grid == serial grid" `Quick
              test_grid_parallel_deterministic ] ) ]
