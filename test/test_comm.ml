(** Directed tests of the wire-plan communication runtime: steady-state
    communication allocates no minor words, the staging-buffer pool
    recycles under ping-pong traffic, send-time snapshots stay sound
    when the receiver lags the sender by many repeat iterations, and the
    parallel drain leaves wire-mode results bit-identical. *)

open Commopt

let t3d = Machine.T3d.machine

let compile_flat ?defines src =
  let prog = Zpl.Check.compile_string ?defines src in
  Ir.Flat.flatten (Opt.Passes.compile Opt.Config.pl_cum prog)

let run ?domains ?wire ?(lib = Machine.T3d.pvm) ~pr ~pc flat =
  Sim.Engine.run
    (Sim.Engine.of_plans ?domains
       (Sim.Engine.plan ?wire ~machine:t3d ~lib ~pr ~pc flat))

(* ------------------------------------------------------------------ *)
(* Zero-allocation steady state                                        *)
(* ------------------------------------------------------------------ *)

(** Minor words allocated by one full build+run of the two-node
    synthetic at [iters] iterations. *)
let minor_words_of ~iters src =
  let defines = Programs.Synthetic.defines ~doubles:64 ~busyn:32 ~iters in
  let flat = compile_flat ~defines src in
  let engine =
    Sim.Engine.of_plans
      (Sim.Engine.plan ~machine:t3d ~lib:Machine.T3d.pvm ~pr:1 ~pc:2 flat)
  in
  let before = Gc.minor_words () in
  ignore (Sim.Engine.run engine);
  Gc.minor_words () -. before

(** Differential allocation measurement: the one-off costs (plan
    compilation, kernel caches, pool warm-up) are identical at [lo] and
    [hi] iterations, so the [hi - lo] delta isolates the per-iteration
    cost; subtracting the communication-free busy variant's delta then
    isolates the per-iteration cost of communication alone. In wire mode
    that must be (essentially) zero: no extract/inject lists, no hashed
    mailbox lookups, no boxed floats on the activation path. *)
let test_zero_alloc () =
  let lo = 50 and hi = 250 in
  (* Warm both program shapes once so shared lazy state (alcotest
     buffers, format machinery) is paid before measuring. *)
  ignore (minor_words_of ~iters:2 Programs.Synthetic.source);
  ignore (minor_words_of ~iters:2 Programs.Synthetic.busy_source);
  let comm =
    minor_words_of ~iters:hi Programs.Synthetic.source
    -. minor_words_of ~iters:lo Programs.Synthetic.source
  and busy =
    minor_words_of ~iters:hi Programs.Synthetic.busy_source
    -. minor_words_of ~iters:lo Programs.Synthetic.busy_source
  in
  let per_iter = (comm -. busy) /. float_of_int (hi - lo) in
  (* Each iteration is 2 transfers x 2 sides x 2 procs = 8 comm
     activations plus 2 packed messages; 8 words/iteration of slack is
     <= 1 word per activation, i.e. no per-message allocation at all. *)
  Alcotest.(check bool)
    (Printf.sprintf
       "steady-state comm allocates %.2f minor words/iteration (want <= 8)"
       per_iter)
    true
    (per_iter <= 8.0)

(* ------------------------------------------------------------------ *)
(* Pool recycling under ping-pong traffic                              *)
(* ------------------------------------------------------------------ *)

let test_pool_recycles () =
  let iters = 60 in
  let defines = Programs.Synthetic.defines ~doubles:16 ~busyn:16 ~iters in
  let flat = compile_flat ~defines Programs.Synthetic.source in
  let res = run ~wire:true ~pr:1 ~pc:2 flat in
  let fresh, reused = Sim.Engine.pool_counts res.Sim.Engine.engine in
  let total = Sim.Stats.total_messages res.Sim.Engine.stats in
  Alcotest.(check bool) "messages flowed" true (total >= 2 * iters);
  Alcotest.(check int) "every send acquired a staging buffer" total
    (fresh + reused);
  (* Ping-pong keeps the two processors in lockstep, so the in-flight
     high-water — and with it the number of buffers ever allocated — is
     a small constant independent of the iteration count. *)
  Alcotest.(check bool)
    (Printf.sprintf "fresh buffers bounded (%d fresh for %d messages)" fresh
       total)
    true
    (fresh <= 8);
  Alcotest.(check bool) "the pool actually recycled" true (reused > total / 2)

let test_legacy_pool_counts_zero () =
  let defines = Programs.Synthetic.defines ~doubles:8 ~busyn:8 ~iters:3 in
  let flat = compile_flat ~defines Programs.Synthetic.source in
  let res = run ~wire:false ~pr:1 ~pc:2 flat in
  Alcotest.(check bool) "legacy engine reports no pools" true
    (not (Sim.Engine.wired res.Sim.Engine.engine));
  Alcotest.(check (pair int int)) "no pool traffic in legacy mode" (0, 0)
    (Sim.Engine.pool_counts res.Sim.Engine.engine)

(* ------------------------------------------------------------------ *)
(* Snapshot soundness when the receiver lags the sender                *)
(* ------------------------------------------------------------------ *)

(** One-directional traffic: only processor 1 sends (the [B@east]
    boundary), so under the serial drain processor 0 blocks on its first
    DN wait while processor 1 — which never waits on anything — runs the
    {e entire} program, depositing one message per iteration into
    processor 0's mailbox. [B] is rewritten every iteration, so each
    in-flight message must carry the values [B] held at its own send
    time: if staging buffers aliased live stores (or were recycled while
    still in flight), the lagging receiver would read late values and
    diverge from the oracle. *)
let lag_src =
  {|
constant m     = 16;
constant iters = 40;

region Strip = [1..m, 1..2];
direction east = [0, 1];

var A, B : [0..m+1, 0..3] float;
var t : int;

procedure main();
begin
  [0..m+1, 0..3] A := Index1 * 0.25;
  [0..m+1, 0..3] B := Index2 + Index1 * 0.5;
  for t := 1 to iters do
    [Strip] A := A * 0.5 + B@east * 0.25;
    [Strip] B := B * 1.0001 + 0.0001;
  end;
end;
|}

let fingerprint (res : Sim.Engine.result) n_arrays =
  let bufs =
    List.init n_arrays (fun aid ->
        let g = Sim.Engine.gather res.Sim.Engine.engine aid in
        let buf = Runtime.Store.read_only g in
        List.init (Bigarray.Array1.dim buf) (fun i ->
            Int64.bits_of_float (Bigarray.Array1.get buf i)))
  in
  (Int64.bits_of_float res.Sim.Engine.time, res.Sim.Engine.stats, bufs)

let test_snapshot_under_lag () =
  let iters = 40 in
  let flat = compile_flat lag_src in
  let wire = run ~wire:true ~pr:1 ~pc:2 flat in
  let legacy = run ~wire:false ~pr:1 ~pc:2 flat in
  Alcotest.(check bool) "lagging receiver: wire == legacy (bitwise)" true
    (fingerprint wire 2 = fingerprint legacy 2);
  let fresh, reused = Sim.Engine.pool_counts wire.Sim.Engine.engine in
  let total = Sim.Stats.total_messages wire.Sim.Engine.stats in
  Alcotest.(check int) "every send acquired a staging buffer" total
    (fresh + reused);
  (* The stress actually happened: the sender lapped the receiver by the
     whole loop, so the pool's high-water — all-fresh acquisitions — is
     one buffer per iteration, none ever recycled. *)
  Alcotest.(check int) "sender ran the whole loop ahead" iters fresh;
  Alcotest.(check int) "no buffer was recycled while in flight" 0 reused

let test_wire_parallel_drain () =
  let flat = compile_flat lag_src in
  let serial = run ~wire:true ~domains:1 ~pr:1 ~pc:2 flat in
  let parallel = run ~wire:true ~domains:3 ~pr:1 ~pc:2 flat in
  Alcotest.(check bool) "wire mode: domains:3 == serial (bitwise)" true
    (fingerprint serial 2 = fingerprint parallel 2)

let () =
  Alcotest.run "comm runtime"
    [ ( "wire",
        [ Alcotest.test_case "zero-allocation steady state" `Quick
            test_zero_alloc;
          Alcotest.test_case "pool recycles under ping-pong" `Quick
            test_pool_recycles;
          Alcotest.test_case "legacy mode has no pools" `Quick
            test_legacy_pool_counts_zero;
          Alcotest.test_case "snapshots sound under receiver lag" `Quick
            test_snapshot_under_lag;
          Alcotest.test_case "parallel drain bit-identical" `Quick
            test_wire_parallel_drain ] ) ]
