(** The topology-aware network model: dimension-order routing
    properties (including degenerate meshes), the ideal default's
    bit-identity with the seed's flat model across the paper rows,
    value-preservation and monotonicity under contention, per-link
    occupancy accounting, and the two pinned topology-sensitivity
    scenarios — a mesh-vs-torus collective-pick flip and an
    ideal-vs-mesh optimization-argmin flip. *)

open Commopt

let bits = Int64.bits_of_float

(* ------------------------------------------------------------------ *)
(* Routing properties                                                  *)
(* ------------------------------------------------------------------ *)

let meshes = [ (1, 1); (1, 2); (2, 1); (2, 2); (1, 8); (8, 1); (3, 3); (3, 5); (4, 4) ]

(** Walk a route link by link, decoding [node*4 + dir] (0=E 1=W 2=S
    3=N), and check that every link leaves the node the message is
    currently at and that the walk ends at [dst]. On a mesh the walk
    must stay in bounds (boundary links are phantom: allocated but
    never routed over); on a torus movement wraps. *)
let walk topo ~pr ~pc ~src ~dst =
  let nlinks = Machine.Topology.nlinks ~pr ~pc in
  let route = Machine.Topology.route topo ~pr ~pc ~src ~dst in
  let r = ref (src / pc) and c = ref (src mod pc) in
  Array.iter
    (fun l ->
      Alcotest.(check bool) "link id in range" true (l >= 0 && l < nlinks);
      let node = l / 4 and dir = l land 3 in
      Alcotest.(check int) "link leaves the current node" ((!r * pc) + !c) node;
      (match dir with
      | 0 -> incr c
      | 1 -> decr c
      | 2 -> incr r
      | _ -> decr r);
      match topo with
      | Machine.Topology.Torus ->
          r := ((!r mod pr) + pr) mod pr;
          c := ((!c mod pc) + pc) mod pc
      | Machine.Topology.Mesh ->
          Alcotest.(check bool) "mesh route stays in bounds" true
            (!r >= 0 && !r < pr && !c >= 0 && !c < pc)
      | Machine.Topology.Ideal -> ())
    route;
  Alcotest.(check int) "route ends at dst" dst ((!r * pc) + !c);
  route

let test_routes_walk () =
  List.iter
    (fun (pr, pc) ->
      let n = pr * pc in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          Alcotest.(check int) "ideal routes are empty" 0
            (Array.length
               (Machine.Topology.route Machine.Topology.Ideal ~pr ~pc ~src
                  ~dst));
          List.iter
            (fun topo ->
              let route = walk topo ~pr ~pc ~src ~dst in
              Alcotest.(check int) "route length equals hops"
                (Machine.Topology.hops topo ~pr ~pc ~src ~dst)
                (Array.length route);
              if src = dst then
                Alcotest.(check int) "self-send routes are empty" 0
                  (Array.length route))
            [ Machine.Topology.Mesh; Machine.Topology.Torus ]
        done
      done)
    meshes

let test_torus_no_longer_than_mesh () =
  List.iter
    (fun (pr, pc) ->
      let n = pr * pc in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          let h topo = Machine.Topology.hops topo ~pr ~pc ~src ~dst in
          Alcotest.(check bool) "torus never routes longer than mesh" true
            (h Machine.Topology.Torus <= h Machine.Topology.Mesh)
        done
      done;
      Alcotest.(check bool) "diameters ordered the same way" true
        (Machine.Topology.diameter Machine.Topology.Torus ~pr ~pc
         <= Machine.Topology.diameter Machine.Topology.Mesh ~pr ~pc))
    meshes

let test_wrap_shortcut () =
  (* the canonical wrap: ends of a 1x8 line are 7 mesh hops, 1 torus hop *)
  Alcotest.(check int) "mesh end-to-end" 7
    (Machine.Topology.hops Machine.Topology.Mesh ~pr:1 ~pc:8 ~src:0 ~dst:7);
  Alcotest.(check int) "torus wrap" 1
    (Machine.Topology.hops Machine.Topology.Torus ~pr:1 ~pc:8 ~src:0 ~dst:7)

(* ------------------------------------------------------------------ *)
(* Engine behaviour under topologies                                   *)
(* ------------------------------------------------------------------ *)

let tiny_src =
  {|
constant n = 6;
region R = [1..n, 1..n];
direction e = [0, 1]; direction w = [0, -1];
var A, B : [0..n+1, 0..n+1] float;
var s : float;
var t : int;
procedure main();
begin
  [0..n+1, 0..n+1] A := Index1 + 2.0 * Index2;
  for t := 1 to 2 do
    [R] B := 0.5 * (A@e + A@w);
    [R] s := +<< B;
    [R] A := B + s * 0.0001;
  end;
end;
|}

(** Every spec of the six paper rows, with the topology left at its
    default, must produce bit-identical results to the seed's
    pre-topology pipeline — here reconstructed by calling the compile
    and plan stages without any topology argument at all. *)
let test_ideal_default_is_seed_path () =
  List.iter
    (fun (b : Programs.Bench_def.t) ->
      List.iter
        (fun (label, config, lib) ->
          let spec =
            Report.Experiment.bench_spec ~machine:Machine.T3d.machine ~lib
              ~config ~scale:`Test b
            |> Run.Spec.with_topology Machine.Topology.Ideal
          in
          let via_spec = Run.Spec.run spec in
          let prog =
            Zpl.Check.compile_string
              ~defines:b.Programs.Bench_def.test_defines
              b.Programs.Bench_def.source
          in
          let ir =
            Opt.Passes.compile ~machine:Machine.T3d.machine ~lib ~mesh:(2, 2)
              config prog
          in
          let flat = Ir.Flat.flatten ir in
          let seed =
            Sim.Engine.run
              (Sim.Engine.of_plans
                 (Sim.Engine.plan ~machine:Machine.T3d.machine ~lib ~pr:2
                    ~pc:2 flat))
          in
          let what = b.Programs.Bench_def.name ^ "/" ^ label in
          Alcotest.(check int64)
            (what ^ ": time bits")
            (bits seed.Sim.Engine.time)
            (bits via_spec.Sim.Engine.time);
          Alcotest.(check int)
            (what ^ ": dynamic count")
            (Sim.Stats.dynamic_count seed.Sim.Engine.stats)
            (Sim.Stats.dynamic_count via_spec.Sim.Engine.stats);
          Alcotest.(check int)
            (what ^ ": messages")
            (Sim.Stats.total_messages seed.Sim.Engine.stats)
            (Sim.Stats.total_messages via_spec.Sim.Engine.stats);
          Alcotest.(check int)
            (what ^ ": bytes")
            (Sim.Stats.total_bytes seed.Sim.Engine.stats)
            (Sim.Stats.total_bytes via_spec.Sim.Engine.stats))
        Report.Experiment.paper_rows)
    Programs.Suite.paper_benchmarks

(** Contention reschedules, it never recomputes: under mesh/torus the
    message/byte/activation counts are unchanged, the simulated time
    can only grow (every arrival is delayed by at least the per-hop
    wire time), and the computed values still match the sequential
    oracle. *)
let test_topologies_preserve_results () =
  let b = Programs.Suite.tomcatv in
  List.iter
    (fun (label, config, lib) ->
      let ideal_spec =
        Report.Experiment.bench_spec ~machine:Machine.T3d.machine ~lib
          ~config ~scale:`Test b
      in
      let ideal = Run.Spec.run ideal_spec in
      List.iter
        (fun topology ->
          let spec = Run.Spec.with_topology topology ideal_spec in
          let res = Run.Spec.run spec in
          let what =
            Printf.sprintf "%s under %s" label (Machine.Topology.name topology)
          in
          Alcotest.(check int)
            (what ^ ": same dynamic count")
            (Sim.Stats.dynamic_count ideal.Sim.Engine.stats)
            (Sim.Stats.dynamic_count res.Sim.Engine.stats);
          Alcotest.(check int)
            (what ^ ": same messages")
            (Sim.Stats.total_messages ideal.Sim.Engine.stats)
            (Sim.Stats.total_messages res.Sim.Engine.stats);
          Alcotest.(check int)
            (what ^ ": same bytes")
            (Sim.Stats.total_bytes ideal.Sim.Engine.stats)
            (Sim.Stats.total_bytes res.Sim.Engine.stats);
          Alcotest.(check bool)
            (what ^ ": contention never speeds the program up")
            true
            (res.Sim.Engine.time >= ideal.Sim.Engine.time);
          if label = "baseline" || label = "pl" then
            let c = of_spec spec in
            Alcotest.(check bool)
              (what ^ ": matches the sequential oracle")
              true
              (first_divergence c res (run_oracle c) = None))
        [ Machine.Topology.Mesh; Machine.Topology.Torus ])
    Report.Experiment.paper_rows

(** Degenerate meshes: extent-1 dimensions, more processors than rows
    or columns (phantom ranks owning nothing), a single processor. The
    engine must terminate with a finite non-negative time and never
    divide by zero or route over boundary links (the route walk above
    covers the latter statically; this runs the full engine). *)
let test_degenerate_meshes_run () =
  List.iter
    (fun (pr, pc) ->
      List.iter
        (fun topology ->
          List.iter
            (fun collective ->
              let spec =
                let open Run.Spec in
                default tiny_src |> with_mesh pr pc |> with_topology topology
                |> with_collective collective
              in
              let res = Run.Spec.run spec in
              Alcotest.(check bool)
                (Printf.sprintf "%dx%d %s finite" pr pc
                   (Machine.Topology.name topology))
                true
                (Float.is_finite res.Sim.Engine.time
                && res.Sim.Engine.time >= 0.0))
            [ Opt.Config.Opaque; Opt.Config.Auto ])
        [ Machine.Topology.Mesh; Machine.Topology.Torus ])
    [ (1, 1); (1, 2); (1, 8); (8, 1); (3, 3) ]

let test_link_occupancy () =
  let spec topology =
    let open Run.Spec in
    default tiny_src |> with_mesh 2 2 |> with_topology topology
  in
  let mesh_res = Run.Spec.run (spec Machine.Topology.Mesh) in
  let occ = Sim.Engine.link_occupancy mesh_res.Sim.Engine.engine in
  Alcotest.(check int) "four directed links per node" (4 * 2 * 2)
    (Array.length occ);
  Alcotest.(check bool) "occupancies are non-negative" true
    (Array.for_all (fun x -> x >= 0.0) occ);
  Alcotest.(check bool) "some link was actually used" true
    (Array.exists (fun x -> x > 0.0) occ);
  let ideal_res = Run.Spec.run (spec Machine.Topology.Ideal) in
  Alcotest.(check int) "ideal tracks no links" 0
    (Array.length (Sim.Engine.link_occupancy ideal_res.Sim.Engine.engine))

(** Non-ideal topologies force the serial drain: asking for a domain
    pool must not change a single bit of the result. *)
let test_mesh_forces_serial_drain () =
  let run d =
    let open Run.Spec in
    default tiny_src |> with_mesh 2 2
    |> with_topology Machine.Topology.Mesh
    |> with_domains d |> run
  in
  let serial = run 1 and pooled = run 4 in
  Alcotest.(check int64) "same time bits under a domain pool"
    (bits serial.Sim.Engine.time)
    (bits pooled.Sim.Engine.time);
  Alcotest.(check int) "same dynamic count"
    (Sim.Stats.dynamic_count serial.Sim.Engine.stats)
    (Sim.Stats.dynamic_count pooled.Sim.Engine.stats)

(* ------------------------------------------------------------------ *)
(* Pinned topology-sensitivity scenarios                               *)
(* ------------------------------------------------------------------ *)

(** On a wire-dominated line of 9, the dissemination schedule's wrap
    round (rank 8 -> 0: 8 mesh hops, 1 torus hop) makes the cost
    search's argmin topology-dependent: the torus keeps dissemination,
    the mesh abandons it. *)
let test_pinned_collective_pick_flip () =
  let machine =
    { Machine.T3d.machine with Machine.Params.wire_latency = 40e-6 }
  in
  let pick topology =
    Ir.Coll.alg_name
      (Opt.Collective.choose ~topology ~mesh:(1, 9) ~machine
         ~lib:Machine.T3d.pvm 9)
  in
  Alcotest.(check string) "ideal pick" "dissem" (pick Machine.Topology.Ideal);
  Alcotest.(check string) "torus pick" "dissem" (pick Machine.Topology.Torus);
  Alcotest.(check string) "mesh pick" "recdouble" (pick Machine.Topology.Mesh);
  Alcotest.(check bool) "mesh and torus disagree" true
    (pick Machine.Topology.Mesh <> pick Machine.Topology.Torus)

(** TOMCATV on a 4x4 T3D: under the ideal crossbar the fully optimized
    [pl] row is the fastest configuration, but under mesh contention
    its eagerly posted sends pay per-link queueing that the combined
    [cc] schedule avoids — the optimal rr/cc/pl mix depends on the
    topology. *)
let test_pinned_config_argmin_flip () =
  let time topology config =
    let spec =
      let open Run.Spec in
      default Programs.Tomcatv.source
      |> with_defines [ ("n", 24.); ("iters", 2.) ]
      |> with_config config |> with_mesh 4 4 |> with_topology topology
    in
    (Run.Spec.run spec).Sim.Engine.time
  in
  let open Machine.Topology in
  let cc_ideal = time Ideal Opt.Config.cc_cum
  and pl_ideal = time Ideal Opt.Config.pl_cum
  and cc_mesh = time Mesh Opt.Config.cc_cum
  and pl_mesh = time Mesh Opt.Config.pl_cum in
  Alcotest.(check bool) "ideal: pl is the argmin" true (pl_ideal < cc_ideal);
  Alcotest.(check bool) "mesh: cc is the argmin" true (cc_mesh < pl_mesh)

(** The bisection-stress synthetic: cost-searched collective rounds
    share the line's eastward links with the stencil messages, so the
    mesh pays real queueing that the ideal crossbar never sees — and
    the torus, whose wrap halves the collective routes, lands in
    between. *)
let test_contended_orders_topologies () =
  let time topology =
    let spec =
      let open Run.Spec in
      default Programs.Synthetic.contended_source
      |> with_defines (Programs.Synthetic.contended_defines ~n:16 ~iters:2)
      |> with_collective Opt.Config.Auto
      |> with_mesh 1 8 |> with_topology topology
    in
    (Run.Spec.run spec).Sim.Engine.time
  in
  let open Machine.Topology in
  let ideal = time Ideal and mesh = time Mesh and torus = time Torus in
  Alcotest.(check bool) "mesh slower than ideal" true (mesh > ideal);
  Alcotest.(check bool) "torus slower than ideal" true (torus > ideal);
  Alcotest.(check bool) "torus no slower than mesh" true (torus <= mesh)

let () =
  Alcotest.run "topology"
    [ ( "routing",
        [ Alcotest.test_case "routes walk src to dst" `Quick test_routes_walk;
          Alcotest.test_case "torus <= mesh hops" `Quick
            test_torus_no_longer_than_mesh;
          Alcotest.test_case "wrap shortcut" `Quick test_wrap_shortcut ] );
      ( "engine",
        [ Alcotest.test_case "ideal default = seed path" `Quick
            test_ideal_default_is_seed_path;
          Alcotest.test_case "topologies preserve results" `Quick
            test_topologies_preserve_results;
          Alcotest.test_case "degenerate meshes run" `Quick
            test_degenerate_meshes_run;
          Alcotest.test_case "link occupancy" `Quick test_link_occupancy;
          Alcotest.test_case "non-ideal forces serial drain" `Quick
            test_mesh_forces_serial_drain ] );
      ( "pinned",
        [ Alcotest.test_case "collective pick flips mesh vs torus" `Quick
            test_pinned_collective_pick_flip;
          Alcotest.test_case "rr/cc/pl argmin flips ideal vs mesh" `Quick
            test_pinned_config_argmin_flip;
          Alcotest.test_case "contended synthetic orders topologies" `Quick
            test_contended_orders_topologies ] ) ]
