(** Properties of the unified [Run] API: content-addressed plan cache
    ([Run.Cache]), spec canonicalization ([Run.Spec.key]), and the batch
    sweep service ([Run.Sweep]). These are the acceptance properties of
    the Spec redesign: equal specs share compiled plans physically and
    never recompile; flipping any single key-relevant field misses; a
    cached engine's results are bit-identical to a cold compile's. *)

open Commopt

let src =
  {|
constant n = 8;
region R = [1..n, 1..n];
region BigR = [0..n+1, 0..n+1];
direction e = [0, 1]; direction w = [0, -1];
direction no = [-1, 0]; direction s = [1, 0];
var A, B : [BigR] float;
var err : float;
var t : int;
procedure main();
begin
  [BigR] A := Index1 + 10.0 * Index2;
  for t := 1 to 3 do
    [R] B := 0.25 * (A@e + A@w + A@no + A@s);
    [R] err := max<< abs(B - A);
    [R] A := B;
  end;
end;
|}

let base () = Run.Spec.(default src |> with_mesh 2 2)
let bits = Int64.bits_of_float

(* ------------------------------------------------------------------ *)
(* Cache hits share plans physically                                   *)
(* ------------------------------------------------------------------ *)

let test_hit_physical_equality () =
  let cache = Run.Cache.create () in
  let spec = base () in
  let a1, h1 = Run.Cache.find cache spec in
  let a2, h2 = Run.Cache.find cache (base ()) in
  Alcotest.(check bool) "first lookup compiles" false h1;
  Alcotest.(check bool) "second lookup hits" true h2;
  Alcotest.(check bool) "identical artifact, not a recompile" true (a1 == a2);
  let e1 = Run.Spec.engine_of a1 and e2 = Run.Spec.engine_of a2 in
  Alcotest.(check bool) "engines share plans physically" true
    (Sim.Engine.shared_plans e1 == Sim.Engine.shared_plans e2);
  Alcotest.(check bool) "engines have private mutable state" true (e1 != e2);
  let c = Run.Cache.counters cache in
  Alcotest.(check int) "one miss" 1 c.Run.Cache.misses;
  Alcotest.(check int) "one hit" 1 c.Run.Cache.hits;
  Alcotest.(check int) "no evictions" 0 c.Run.Cache.evictions

(* ------------------------------------------------------------------ *)
(* Any single key-relevant field flip misses                           *)
(* ------------------------------------------------------------------ *)

let flips : (string * (Run.Spec.t -> Run.Spec.t)) list =
  [ ("source", fun s -> { s with Run.Spec.source = src ^ "-- tail\n" });
    ("defines", Run.Spec.with_defines [ ("n", 9.0) ]);
    ("config", Run.Spec.with_config Opt.Config.baseline);
    ("collective", Run.Spec.with_collective Opt.Config.Auto);
    ("heuristic", Run.Spec.with_config Opt.Config.pl_max_latency);
    ("machine", Run.Spec.with_machine Machine.Paragon.machine);
    ("lib", Run.Spec.with_lib Machine.T3d.shmem);
    ("mesh", Run.Spec.with_mesh 1 2);
    ("topology", Run.Spec.with_topology Machine.Topology.Mesh);
    ("row_path", Run.Spec.with_row_path false);
    ("fuse", Run.Spec.with_fuse false);
    ("cse", Run.Spec.with_cse false);
    ("wire", Run.Spec.with_wire false);
    ("check", Run.Spec.with_check true) ]

let test_single_flip_misses () =
  let b = base () in
  let k = Run.Spec.key b in
  List.iter
    (fun (name, flip) ->
      Alcotest.(check bool)
        (Printf.sprintf "flipping %s changes the key" name)
        false
        (String.equal k (Run.Spec.key (flip b))))
    flips;
  (* a flipped spec misses the cache that holds the base *)
  let cache = Run.Cache.create () in
  ignore (Run.Cache.find cache b);
  List.iter
    (fun (name, flip) ->
      if name = "source" || name = "defines" then ()
        (* same program family only: don't compile a 9x9 variant here *)
      else
        let _, hit = Run.Cache.find cache (flip b) in
        Alcotest.(check bool)
          (Printf.sprintf "%s variant misses" name)
          false hit)
    [ List.nth flips 2; List.nth flips 7; List.nth flips 10 ]

let test_runtime_knobs_excluded () =
  let b = base () in
  let k = Run.Spec.key b in
  Alcotest.(check string) "limit is not part of the key" k
    (Run.Spec.key (Run.Spec.with_limit 5 b));
  Alcotest.(check string) "domains is not part of the key" k
    (Run.Spec.key (Run.Spec.with_domains 4 b))

let test_defines_canonical () =
  let d1 = [ ("iters", 3.0); ("n", 8.0) ]
  and d2 = [ ("n", 8.0); ("iters", 3.0) ] in
  let s1 = Run.Spec.with_defines d1 (base ())
  and s2 = Run.Spec.with_defines d2 (base ()) in
  Alcotest.(check bool) "define order does not matter" true
    (Run.Spec.equal s1 s2);
  Alcotest.(check string) "same program digest" (Run.Spec.program_digest s1)
    (Run.Spec.program_digest s2)

(* qcheck: a random subset of knob flips keys equal iff the subset is
   empty, while limit/domains perturbations never affect the key *)
let prop_key_iff_knobs =
  let gen =
    QCheck.make
      ~print:(fun (a, b, c, d, l, m) ->
        Printf.sprintf "row_path=%b fuse=%b cse=%b wire=%b limit=%d domains=%d"
          a b c d l m)
      QCheck.Gen.(
        map
          (fun (a, b, c, d, l, m) -> (a, b, c, d, l, m))
          (tup6 bool bool bool bool (int_range 1 1000) (int_range 1 8)))
  in
  QCheck.Test.make ~count:100 ~name:"key ignores limit/domains, sees knobs"
    gen
    (fun (row_path, fuse, cse, wire, limit, domains) ->
      let b = base () in
      let s =
        Run.Spec.(
          b |> with_row_path row_path |> with_fuse fuse |> with_cse cse
          |> with_wire wire |> with_limit limit |> with_domains domains)
      in
      let knobs_default = row_path && fuse && cse && wire in
      Bool.equal (Run.Spec.equal b s) knobs_default)

(* ------------------------------------------------------------------ *)
(* Cached vs cold: bit-identical results across the six paper rows     *)
(* ------------------------------------------------------------------ *)

let test_cached_equals_cold_paper_rows () =
  let b = Programs.Suite.tomcatv in
  let cache = Run.Cache.create () in
  List.iter
    (fun (label, config, lib) ->
      let spec =
        Report.Experiment.bench_spec ~machine:Machine.T3d.machine ~lib
          ~config ~scale:`Test b
      in
      let cold = Run.Spec.run spec in
      let warm1 = Run.Cache.run cache spec in
      let warm2 = Run.Cache.run cache spec in
      List.iter
        (fun (what, r) ->
          Alcotest.(check int64)
            (Printf.sprintf "%s: %s time bits" label what)
            (bits cold.Sim.Engine.time)
            (bits r.Sim.Engine.time);
          Alcotest.(check int)
            (Printf.sprintf "%s: %s dynamic count" label what)
            (Sim.Stats.dynamic_count cold.Sim.Engine.stats)
            (Sim.Stats.dynamic_count r.Sim.Engine.stats);
          Alcotest.(check int)
            (Printf.sprintf "%s: %s message count" label what)
            (Sim.Stats.total_messages cold.Sim.Engine.stats)
            (Sim.Stats.total_messages r.Sim.Engine.stats);
          Alcotest.(check int)
            (Printf.sprintf "%s: %s byte count" label what)
            (Sim.Stats.total_bytes cold.Sim.Engine.stats)
            (Sim.Stats.total_bytes r.Sim.Engine.stats))
        [ ("cache-miss run", warm1); ("cache-hit run", warm2) ])
    Report.Experiment.paper_rows;
  let c = Run.Cache.counters cache in
  Alcotest.(check int) "six rows -> six compiles"
    (List.length Report.Experiment.paper_rows)
    c.Run.Cache.misses;
  Alcotest.(check int) "six repeats -> six hits"
    (List.length Report.Experiment.paper_rows)
    c.Run.Cache.hits

(* ------------------------------------------------------------------ *)
(* LRU eviction under a capacity bound                                 *)
(* ------------------------------------------------------------------ *)

let test_lru_eviction () =
  let cache = Run.Cache.create ~capacity:2 () in
  let s1 = base () in
  let s2 = Run.Spec.with_config Opt.Config.baseline s1 in
  let s3 = Run.Spec.with_config Opt.Config.rr_only s1 in
  ignore (Run.Cache.find cache s1);
  ignore (Run.Cache.find cache s2);
  ignore (Run.Cache.find cache s3);
  Alcotest.(check int) "capacity bound holds" 2 (Run.Cache.length cache);
  Alcotest.(check int) "one eviction" 1
    (Run.Cache.counters cache).Run.Cache.evictions;
  let _, hit1 = Run.Cache.find cache s1 in
  Alcotest.(check bool) "least-recently-used entry was dropped" false hit1;
  let _, hit3 = Run.Cache.find cache s3 in
  Alcotest.(check bool) "recent entry survived" true hit3

(* ------------------------------------------------------------------ *)
(* Sweep service: second pass all hits, incremental JSON well-formed   *)
(* ------------------------------------------------------------------ *)

let sweep_items () =
  List.map
    (fun (label, config) ->
      { Run.Sweep.label;
        spec = Run.Spec.with_config config (base ()) })
    [ ("baseline", Opt.Config.baseline); ("pl", Opt.Config.pl_cum) ]

let test_sweep_second_pass () =
  let sweep = Run.Sweep.create () in
  let items = sweep_items () in
  let cold = Run.Sweep.run sweep items in
  Alcotest.(check int) "cold pass misses everything" 2 cold.Run.Sweep.misses;
  Alcotest.(check int) "cold pass memoizes nothing" 0
    cold.Run.Sweep.memo_hits;
  let path = Filename.temp_file "sweep" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let warm =
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> Run.Sweep.run ~out:oc sweep items)
      in
      Alcotest.(check int) "warm pass all hits" 2 warm.Run.Sweep.hits;
      Alcotest.(check int) "warm pass no misses" 0 warm.Run.Sweep.misses;
      Alcotest.(check int) "warm pass answered from the result memo" 2
        warm.Run.Sweep.memo_hits;
      List.iter2
        (fun (c : Run.Sweep.row) (w : Run.Sweep.row) ->
          Alcotest.(check int64)
            (w.Run.Sweep.r_label ^ ": memoized time bits")
            (bits c.Run.Sweep.r_time) (bits w.Run.Sweep.r_time);
          Alcotest.(check int)
            (w.Run.Sweep.r_label ^ ": memoized dynamic count")
            c.Run.Sweep.r_dynamic w.Run.Sweep.r_dynamic)
        cold.Run.Sweep.rows warm.Run.Sweep.rows;
      (* the incremental artifact must be well-formed: balanced braces,
         one row object per item, a footer with the counters *)
      let ic = open_in path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let count c = String.fold_left (fun n x -> if x = c then n + 1 else n) 0 text in
      Alcotest.(check int) "braces balance" (count '{') (count '}');
      Alcotest.(check int) "one object per row plus envelope" 3 (count '{');
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "artifact mentions %S" needle)
            true
            (let nl = String.length needle and tl = String.length text in
             let rec scan i =
               i + nl <= tl
               && (String.sub text i nl = needle || scan (i + 1))
             in
             scan 0))
        [ "\"sweep\""; "\"label\""; "\"memo\": true"; "\"hits\": 2";
          "\"memo_hits\": 2"; "\"specs_per_sec\"" ])

let contains text needle =
  let nl = String.length needle and tl = String.length text in
  let rec scan i = i + nl <= tl && (String.sub text i nl = needle || scan (i + 1)) in
  scan 0

let test_json_escape () =
  Alcotest.(check string) "escapes quotes, backslashes, controls"
    "a\\\"b\\\\c\\nd\\te\\u0001f"
    (Run.Json.escape "a\"b\\c\nd\te\x01f");
  Alcotest.(check string) "plain text passes through" "plain text"
    (Run.Json.escape "plain text")

(* A hostile row label (quotes, backslash, newline, tab, a raw control
   byte) must not corrupt the sweep's incremental JSON artifact. *)
let test_sweep_hostile_label () =
  let evil = "evil \"label\" \\ with\nnewline\tand \x01 control" in
  let sweep = Run.Sweep.create () in
  let items = [ { Run.Sweep.label = evil; spec = base () } ] in
  let path = Filename.temp_file "sweep_evil" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let _ =
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> Run.Sweep.run ~out:oc sweep items)
      in
      let ic = open_in path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let count c =
        String.fold_left (fun n x -> if x = c then n + 1 else n) 0 text
      in
      Alcotest.(check int) "braces balance" (count '{') (count '}');
      Alcotest.(check bool) "raw quoted label does not survive" false
        (contains text "evil \"label\"");
      Alcotest.(check bool) "escaped label is present" true
        (contains text "evil \\\"label\\\"");
      Alcotest.(check bool) "no raw control byte in the artifact" true
        (String.for_all (fun ch -> ch = '\n' || Char.code ch >= 0x20) text);
      Alcotest.(check bool) "control byte was \\u-escaped" true
        (contains text "\\u0001"))

(* ------------------------------------------------------------------ *)
(* Legacy one-shot constructor still agrees with plan/of_plans         *)
(* ------------------------------------------------------------------ *)

let test_legacy_make_back_compat () =
  let prog = Zpl.Check.compile_string src in
  let flat = Ir.Flat.flatten (Opt.Passes.compile Opt.Config.pl_cum prog) in
  let legacy =
    Sim.Engine.run
      ((Sim.Engine.make [@alert "-legacy"]) ~machine:Machine.T3d.machine
         ~lib:Machine.T3d.pvm ~pr:2 ~pc:2 flat)
  in
  let split =
    Sim.Engine.run
      (Sim.Engine.of_plans
         (Sim.Engine.plan ~machine:Machine.T3d.machine ~lib:Machine.T3d.pvm
            ~pr:2 ~pc:2 flat))
  in
  Alcotest.(check int64) "same makespan bits" (bits legacy.Sim.Engine.time)
    (bits split.Sim.Engine.time);
  Alcotest.(check int) "same dynamic count"
    (Sim.Stats.dynamic_count legacy.Sim.Engine.stats)
    (Sim.Stats.dynamic_count split.Sim.Engine.stats)

let () =
  Alcotest.run "run"
    [ ( "cache",
        [ Alcotest.test_case "hit shares plans physically" `Quick
            test_hit_physical_equality;
          Alcotest.test_case "single field flip misses" `Quick
            test_single_flip_misses;
          Alcotest.test_case "limit/domains excluded from key" `Quick
            test_runtime_knobs_excluded;
          Alcotest.test_case "defines order canonical" `Quick
            test_defines_canonical;
          QCheck_alcotest.to_alcotest prop_key_iff_knobs;
          Alcotest.test_case "lru eviction" `Quick test_lru_eviction ] );
      ( "results",
        [ Alcotest.test_case "cached == cold over paper rows" `Quick
            test_cached_equals_cold_paper_rows;
          Alcotest.test_case "legacy make agrees" `Quick
            test_legacy_make_back_compat ] );
      ( "sweep",
        [ Alcotest.test_case "second pass hits and JSON artifact" `Quick
            test_sweep_second_pass;
          Alcotest.test_case "json escape helper" `Quick test_json_escape;
          Alcotest.test_case "hostile label stays well-formed" `Quick
            test_sweep_hostile_label ] ) ]
