(** Properties of the unified [Run] API: content-addressed plan cache
    ([Run.Cache]), spec canonicalization ([Run.Spec.key]), and the batch
    sweep service ([Run.Sweep]). These are the acceptance properties of
    the Spec redesign: equal specs share compiled plans physically and
    never recompile; flipping any single key-relevant field misses; a
    cached engine's results are bit-identical to a cold compile's. *)

open Commopt

let src =
  {|
constant n = 8;
region R = [1..n, 1..n];
region BigR = [0..n+1, 0..n+1];
direction e = [0, 1]; direction w = [0, -1];
direction no = [-1, 0]; direction s = [1, 0];
var A, B : [BigR] float;
var err : float;
var t : int;
procedure main();
begin
  [BigR] A := Index1 + 10.0 * Index2;
  for t := 1 to 3 do
    [R] B := 0.25 * (A@e + A@w + A@no + A@s);
    [R] err := max<< abs(B - A);
    [R] A := B;
  end;
end;
|}

let base () = Run.Spec.(default src |> with_mesh 2 2)
let bits = Int64.bits_of_float

(* ------------------------------------------------------------------ *)
(* Cache hits share plans physically                                   *)
(* ------------------------------------------------------------------ *)

let test_hit_physical_equality () =
  let cache = Run.Cache.create () in
  let spec = base () in
  let a1, h1 = Run.Cache.find cache spec in
  let a2, h2 = Run.Cache.find cache (base ()) in
  Alcotest.(check bool) "first lookup compiles" false h1;
  Alcotest.(check bool) "second lookup hits" true h2;
  Alcotest.(check bool) "identical artifact, not a recompile" true (a1 == a2);
  let e1 = Run.Spec.engine_of a1 and e2 = Run.Spec.engine_of a2 in
  Alcotest.(check bool) "engines share plans physically" true
    (Sim.Engine.shared_plans e1 == Sim.Engine.shared_plans e2);
  Alcotest.(check bool) "engines have private mutable state" true (e1 != e2);
  let c = Run.Cache.counters cache in
  Alcotest.(check int) "one miss" 1 c.Run.Cache.misses;
  Alcotest.(check int) "one hit" 1 c.Run.Cache.hits;
  Alcotest.(check int) "no evictions" 0 c.Run.Cache.evictions

(* ------------------------------------------------------------------ *)
(* Any single key-relevant field flip misses                           *)
(* ------------------------------------------------------------------ *)

let flips : (string * (Run.Spec.t -> Run.Spec.t)) list =
  [ ("source", fun s -> { s with Run.Spec.source = src ^ "-- tail\n" });
    ("defines", Run.Spec.with_defines [ ("n", 9.0) ]);
    ("config", Run.Spec.with_config Opt.Config.baseline);
    ("collective", Run.Spec.with_collective Opt.Config.Auto);
    ("heuristic", Run.Spec.with_config Opt.Config.pl_max_latency);
    ("machine", Run.Spec.with_machine Machine.Paragon.machine);
    ("lib", Run.Spec.with_lib Machine.T3d.shmem);
    ("mesh", Run.Spec.with_mesh 1 2);
    ("topology", Run.Spec.with_topology Machine.Topology.Mesh);
    ("row_path", Run.Spec.with_row_path false);
    ("fuse", Run.Spec.with_fuse false);
    ("cse", Run.Spec.with_cse false);
    ("wire", Run.Spec.with_wire false);
    ("check", Run.Spec.with_check true) ]

let test_single_flip_misses () =
  let b = base () in
  let k = Run.Spec.key b in
  List.iter
    (fun (name, flip) ->
      Alcotest.(check bool)
        (Printf.sprintf "flipping %s changes the key" name)
        false
        (String.equal k (Run.Spec.key (flip b))))
    flips;
  (* a flipped spec misses the cache that holds the base *)
  let cache = Run.Cache.create () in
  ignore (Run.Cache.find cache b);
  List.iter
    (fun (name, flip) ->
      if name = "source" || name = "defines" then ()
        (* same program family only: don't compile a 9x9 variant here *)
      else
        let _, hit = Run.Cache.find cache (flip b) in
        Alcotest.(check bool)
          (Printf.sprintf "%s variant misses" name)
          false hit)
    [ List.nth flips 2; List.nth flips 7; List.nth flips 10 ]

let test_runtime_knobs_excluded () =
  let b = base () in
  let k = Run.Spec.key b in
  Alcotest.(check string) "limit is not part of the key" k
    (Run.Spec.key (Run.Spec.with_limit 5 b));
  Alcotest.(check string) "domains is not part of the key" k
    (Run.Spec.key (Run.Spec.with_domains 4 b))

let test_defines_canonical () =
  let d1 = [ ("iters", 3.0); ("n", 8.0) ]
  and d2 = [ ("n", 8.0); ("iters", 3.0) ] in
  let s1 = Run.Spec.with_defines d1 (base ())
  and s2 = Run.Spec.with_defines d2 (base ()) in
  Alcotest.(check bool) "define order does not matter" true
    (Run.Spec.equal s1 s2);
  Alcotest.(check string) "same program digest" (Run.Spec.program_digest s1)
    (Run.Spec.program_digest s2)

(* qcheck: a random subset of knob flips keys equal iff the subset is
   empty, while limit/domains perturbations never affect the key *)
let prop_key_iff_knobs =
  let gen =
    QCheck.make
      ~print:(fun (a, b, c, d, l, m) ->
        Printf.sprintf "row_path=%b fuse=%b cse=%b wire=%b limit=%d domains=%d"
          a b c d l m)
      QCheck.Gen.(
        map
          (fun (a, b, c, d, l, m) -> (a, b, c, d, l, m))
          (tup6 bool bool bool bool (int_range 1 1000) (int_range 1 8)))
  in
  QCheck.Test.make ~count:100 ~name:"key ignores limit/domains, sees knobs"
    gen
    (fun (row_path, fuse, cse, wire, limit, domains) ->
      let b = base () in
      let s =
        Run.Spec.(
          b |> with_row_path row_path |> with_fuse fuse |> with_cse cse
          |> with_wire wire |> with_limit limit |> with_domains domains)
      in
      let knobs_default = row_path && fuse && cse && wire in
      Bool.equal (Run.Spec.equal b s) knobs_default)

(* ------------------------------------------------------------------ *)
(* Cached vs cold: bit-identical results across the six paper rows     *)
(* ------------------------------------------------------------------ *)

let test_cached_equals_cold_paper_rows () =
  let b = Programs.Suite.tomcatv in
  let cache = Run.Cache.create () in
  List.iter
    (fun (label, config, lib) ->
      let spec =
        Report.Experiment.bench_spec ~machine:Machine.T3d.machine ~lib
          ~config ~scale:`Test b
      in
      let cold = Run.Spec.run spec in
      let warm1 = Run.Cache.run cache spec in
      let warm2 = Run.Cache.run cache spec in
      List.iter
        (fun (what, r) ->
          Alcotest.(check int64)
            (Printf.sprintf "%s: %s time bits" label what)
            (bits cold.Sim.Engine.time)
            (bits r.Sim.Engine.time);
          Alcotest.(check int)
            (Printf.sprintf "%s: %s dynamic count" label what)
            (Sim.Stats.dynamic_count cold.Sim.Engine.stats)
            (Sim.Stats.dynamic_count r.Sim.Engine.stats);
          Alcotest.(check int)
            (Printf.sprintf "%s: %s message count" label what)
            (Sim.Stats.total_messages cold.Sim.Engine.stats)
            (Sim.Stats.total_messages r.Sim.Engine.stats);
          Alcotest.(check int)
            (Printf.sprintf "%s: %s byte count" label what)
            (Sim.Stats.total_bytes cold.Sim.Engine.stats)
            (Sim.Stats.total_bytes r.Sim.Engine.stats))
        [ ("cache-miss run", warm1); ("cache-hit run", warm2) ])
    Report.Experiment.paper_rows;
  let c = Run.Cache.counters cache in
  Alcotest.(check int) "six rows -> six compiles"
    (List.length Report.Experiment.paper_rows)
    c.Run.Cache.misses;
  Alcotest.(check int) "six repeats -> six hits"
    (List.length Report.Experiment.paper_rows)
    c.Run.Cache.hits

(* ------------------------------------------------------------------ *)
(* Cached kernel artifact vs fresh compile: the full acceptance grid   *)
(* ------------------------------------------------------------------ *)

(* An engine minted from a cached artifact executes the kernel programs
   compiled at plan time (store binding only, no recompilation); a
   fresh compile builds everything from source. Bit-identical makespans
   and identical dynamic counters across every benchmark x paper row x
   interconnect prove the store-binding contract is complete on the
   whole acceptance surface, not just the tomcatv cell. Problem sizes
   are clamped the same way the sweep grid clamps them, so the grid
   stays test-suite cheap. *)
let test_cached_mint_grid () =
  let cache = Run.Cache.create () in
  let topos =
    [ Machine.Topology.Ideal; Machine.Topology.Mesh; Machine.Topology.Torus ]
  in
  List.iter
    (fun (b : Programs.Bench_def.t) ->
      let defines =
        List.map
          (fun (k, v) ->
            if k = "iters" then (k, 1.0)
            else if k = "n" then (k, Float.min v 8.0)
            else (k, v))
          b.Programs.Bench_def.test_defines
      in
      List.iter
        (fun (label, config, lib) ->
          List.iter
            (fun topo ->
              let spec =
                let open Run.Spec in
                default b.Programs.Bench_def.source
                |> with_defines defines |> with_config config
                |> with_target Machine.T3d.machine lib
                |> with_mesh 2 2 |> with_topology topo
              in
              let name =
                Printf.sprintf "%s/%s/%s" b.Programs.Bench_def.name label
                  (Machine.Topology.name topo)
              in
              let cold = Run.Spec.run spec in
              let _, hit = Run.Cache.find cache spec in
              Alcotest.(check bool) (name ^ ": first lookup compiles") false
                hit;
              (* minted from the cached artifact: store binding only *)
              let cached = Run.Cache.run cache spec in
              Alcotest.(check int64)
                (name ^ ": makespan bits")
                (bits cold.Sim.Engine.time)
                (bits cached.Sim.Engine.time);
              Alcotest.(check int)
                (name ^ ": dynamic count")
                (Sim.Stats.dynamic_count cold.Sim.Engine.stats)
                (Sim.Stats.dynamic_count cached.Sim.Engine.stats);
              Alcotest.(check int)
                (name ^ ": byte count")
                (Sim.Stats.total_bytes cold.Sim.Engine.stats)
                (Sim.Stats.total_bytes cached.Sim.Engine.stats))
            topos)
        Report.Experiment.paper_rows)
    Programs.Suite.paper_benchmarks

(* ------------------------------------------------------------------ *)
(* Steady-state warm sweep: pinned minor-word budget                   *)
(* ------------------------------------------------------------------ *)

(* Once the plan cache and result memo are primed, a sweep pass is pure
   lookup: memo key, hashtable probe, row record, one rendered JSON row
   per item. None of that may mint an engine or compile a kernel — a
   leak of either shows up as tens of thousands of minor words per
   spec, so the budget below (with generous headroom over the ~1k words
   a lookup costs) pins the steady state. The first warm pass is burned
   as a warm-up so one-time growth (hashtable resizes, buffer growth in
   the emitter) is not charged to the steady state; [domains:1] keeps
   the loop on this domain, where [Gc.minor_words] can see it. *)
let warm_sweep_budget = 4096.0

let test_warm_sweep_allocation () =
  let sweep = Run.Sweep.create () in
  let items =
    List.map
      (fun (label, config) ->
        { Run.Sweep.label; spec = Run.Spec.with_config config (base ()) })
      [ ("baseline", Opt.Config.baseline);
        ("rr", Opt.Config.rr_only);
        ("cc", Opt.Config.cc_cum);
        ("pl", Opt.Config.pl_cum) ]
  in
  let n = List.length items in
  let null = open_out Filename.null in
  Fun.protect
    ~finally:(fun () -> close_out null)
    (fun () ->
      ignore (Run.Sweep.run ~domains:1 ~out:null sweep items);
      ignore (Run.Sweep.run ~domains:1 ~out:null sweep items);
      let w0 = Gc.minor_words () in
      let steady = Run.Sweep.run ~domains:1 ~out:null sweep items in
      let per_spec = (Gc.minor_words () -. w0) /. float_of_int n in
      Alcotest.(check int) "steady pass is all memo hits" n
        steady.Run.Sweep.memo_hits;
      Alcotest.(check bool)
        (Printf.sprintf
           "steady-state sweep allocates %.0f minor words/spec (budget %.0f)"
           per_spec warm_sweep_budget)
        true
        (per_spec <= warm_sweep_budget))

(* ------------------------------------------------------------------ *)
(* LRU eviction under a capacity bound                                 *)
(* ------------------------------------------------------------------ *)

let test_lru_eviction () =
  let cache = Run.Cache.create ~capacity:2 () in
  let s1 = base () in
  let s2 = Run.Spec.with_config Opt.Config.baseline s1 in
  let s3 = Run.Spec.with_config Opt.Config.rr_only s1 in
  ignore (Run.Cache.find cache s1);
  ignore (Run.Cache.find cache s2);
  ignore (Run.Cache.find cache s3);
  Alcotest.(check int) "capacity bound holds" 2 (Run.Cache.length cache);
  Alcotest.(check int) "one eviction" 1
    (Run.Cache.counters cache).Run.Cache.evictions;
  let _, hit1 = Run.Cache.find cache s1 in
  Alcotest.(check bool) "least-recently-used entry was dropped" false hit1;
  let _, hit3 = Run.Cache.find cache s3 in
  Alcotest.(check bool) "recent entry survived" true hit3

(* ------------------------------------------------------------------ *)
(* Sweep service: second pass all hits, incremental JSON well-formed   *)
(* ------------------------------------------------------------------ *)

let sweep_items () =
  List.map
    (fun (label, config) ->
      { Run.Sweep.label;
        spec = Run.Spec.with_config config (base ()) })
    [ ("baseline", Opt.Config.baseline); ("pl", Opt.Config.pl_cum) ]

let test_sweep_second_pass () =
  let sweep = Run.Sweep.create () in
  let items = sweep_items () in
  let cold = Run.Sweep.run sweep items in
  Alcotest.(check int) "cold pass misses everything" 2 cold.Run.Sweep.misses;
  Alcotest.(check int) "cold pass memoizes nothing" 0
    cold.Run.Sweep.memo_hits;
  let path = Filename.temp_file "sweep" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let warm =
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> Run.Sweep.run ~out:oc sweep items)
      in
      Alcotest.(check int) "warm pass all hits" 2 warm.Run.Sweep.hits;
      Alcotest.(check int) "warm pass no misses" 0 warm.Run.Sweep.misses;
      Alcotest.(check int) "warm pass answered from the result memo" 2
        warm.Run.Sweep.memo_hits;
      List.iter2
        (fun (c : Run.Sweep.row) (w : Run.Sweep.row) ->
          Alcotest.(check int64)
            (w.Run.Sweep.r_label ^ ": memoized time bits")
            (bits c.Run.Sweep.r_time) (bits w.Run.Sweep.r_time);
          Alcotest.(check int)
            (w.Run.Sweep.r_label ^ ": memoized dynamic count")
            c.Run.Sweep.r_dynamic w.Run.Sweep.r_dynamic)
        cold.Run.Sweep.rows warm.Run.Sweep.rows;
      (* the incremental artifact must be well-formed: balanced braces,
         one row object per item, a footer with the counters *)
      let ic = open_in path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let count c = String.fold_left (fun n x -> if x = c then n + 1 else n) 0 text in
      Alcotest.(check int) "braces balance" (count '{') (count '}');
      Alcotest.(check int) "one object per row plus envelope" 3 (count '{');
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "artifact mentions %S" needle)
            true
            (let nl = String.length needle and tl = String.length text in
             let rec scan i =
               i + nl <= tl
               && (String.sub text i nl = needle || scan (i + 1))
             in
             scan 0))
        [ "\"sweep\""; "\"label\""; "\"memo\": true"; "\"hits\": 2";
          "\"memo_hits\": 2"; "\"specs_per_sec\"" ])

let contains text needle =
  let nl = String.length needle and tl = String.length text in
  let rec scan i = i + nl <= tl && (String.sub text i nl = needle || scan (i + 1)) in
  scan 0

let test_json_escape () =
  Alcotest.(check string) "escapes quotes, backslashes, controls"
    "a\\\"b\\\\c\\nd\\te\\u0001f"
    (Run.Json.escape "a\"b\\c\nd\te\x01f");
  Alcotest.(check string) "plain text passes through" "plain text"
    (Run.Json.escape "plain text")

(* A hostile row label (quotes, backslash, newline, tab, a raw control
   byte) must not corrupt the sweep's incremental JSON artifact. *)
let test_sweep_hostile_label () =
  let evil = "evil \"label\" \\ with\nnewline\tand \x01 control" in
  let sweep = Run.Sweep.create () in
  let items = [ { Run.Sweep.label = evil; spec = base () } ] in
  let path = Filename.temp_file "sweep_evil" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let _ =
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> Run.Sweep.run ~out:oc sweep items)
      in
      let ic = open_in path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let count c =
        String.fold_left (fun n x -> if x = c then n + 1 else n) 0 text
      in
      Alcotest.(check int) "braces balance" (count '{') (count '}');
      Alcotest.(check bool) "raw quoted label does not survive" false
        (contains text "evil \"label\"");
      Alcotest.(check bool) "escaped label is present" true
        (contains text "evil \\\"label\\\"");
      Alcotest.(check bool) "no raw control byte in the artifact" true
        (String.for_all (fun ch -> ch = '\n' || Char.code ch >= 0x20) text);
      Alcotest.(check bool) "control byte was \\u-escaped" true
        (contains text "\\u0001"))

(* ------------------------------------------------------------------ *)
(* Engines minted from one plan set are independent and agree bitwise  *)
(* ------------------------------------------------------------------ *)

(* The compiled kernel programs are store-agnostic and shared by every
   engine minted from one [plans] value; each engine binds its own
   stores and workspace. Running two mints of the same plan set — and a
   freshly planned third — must give bit-identical makespans, proving
   mint-time binding is complete and no mutable state leaks between
   engines through the shared plans. *)
let test_shared_plans_mint_twice () =
  let prog = Zpl.Check.compile_string src in
  let flat = Ir.Flat.flatten (Opt.Passes.compile Opt.Config.pl_cum prog) in
  let plans =
    Sim.Engine.plan ~machine:Machine.T3d.machine ~lib:Machine.T3d.pvm ~pr:2
      ~pc:2 flat
  in
  let first = Sim.Engine.run (Sim.Engine.of_plans plans) in
  let second = Sim.Engine.run (Sim.Engine.of_plans plans) in
  let fresh =
    Sim.Engine.run
      (Sim.Engine.of_plans
         (Sim.Engine.plan ~machine:Machine.T3d.machine ~lib:Machine.T3d.pvm
            ~pr:2 ~pc:2 flat))
  in
  Alcotest.(check int64) "second mint: same makespan bits"
    (bits first.Sim.Engine.time)
    (bits second.Sim.Engine.time);
  Alcotest.(check int64) "fresh plan: same makespan bits"
    (bits first.Sim.Engine.time)
    (bits fresh.Sim.Engine.time);
  Alcotest.(check int) "same dynamic count"
    (Sim.Stats.dynamic_count first.Sim.Engine.stats)
    (Sim.Stats.dynamic_count second.Sim.Engine.stats)

let () =
  Alcotest.run "run"
    [ ( "cache",
        [ Alcotest.test_case "hit shares plans physically" `Quick
            test_hit_physical_equality;
          Alcotest.test_case "single field flip misses" `Quick
            test_single_flip_misses;
          Alcotest.test_case "limit/domains excluded from key" `Quick
            test_runtime_knobs_excluded;
          Alcotest.test_case "defines order canonical" `Quick
            test_defines_canonical;
          QCheck_alcotest.to_alcotest prop_key_iff_knobs;
          Alcotest.test_case "lru eviction" `Quick test_lru_eviction ] );
      ( "results",
        [ Alcotest.test_case "cached == cold over paper rows" `Quick
            test_cached_equals_cold_paper_rows;
          Alcotest.test_case "shared plans mint independent engines" `Quick
            test_shared_plans_mint_twice;
          Alcotest.test_case
            "cached mint == fresh compile (benchmarks x rows x topologies)"
            `Slow test_cached_mint_grid;
          Alcotest.test_case "warm sweep within minor-word budget" `Quick
            test_warm_sweep_allocation ] );
      ( "sweep",
        [ Alcotest.test_case "second pass hits and JSON artifact" `Quick
            test_sweep_second_pass;
          Alcotest.test_case "json escape helper" `Quick test_json_escape;
          Alcotest.test_case "hostile label stays well-formed" `Quick
            test_sweep_hostile_label ] ) ]
