(** Checker tests: name resolution, typing, region scoping, constant
    folding and overrides, procedure inlining, and every class of semantic
    error the optimizer relies on being rejected. *)

open Commopt.Zpl

let prelude =
  {|
constant n = 8;
region R = [1..n, 1..n];
region BigR = [0..n+1, 0..n+1];
direction east = [0, 1];
direction north = [-1, 0];
var A, B : [BigR] float;
var x, y : float;
var k : int;
var flag : bool;
|}

let compile ?defines body = Check.compile_string ?defines (prelude ^ body)

let expect_error body frag =
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    ln = 0 || go 0
  in
  match compile body with
  | _ -> Alcotest.failf "expected checker error mentioning %S" frag
  | exception Loc.Error (_, msg) ->
      if not (contains msg frag) then
        Alcotest.failf "error %S does not mention %S" msg frag

let test_basic () =
  let p = compile "procedure main(); begin [R] A := B@east + x; end;" in
  Alcotest.(check int) "arrays" 2 (Array.length p.Prog.arrays);
  Alcotest.(check int) "scalars" 4 (Array.length p.Prog.scalars);
  match p.Prog.body with
  | [ Prog.AssignA { lhs = 0; rhs; _ } ] ->
      Alcotest.(check (list (pair int (pair int int))))
        "comm needs"
        [ (1, (0, 1)) ]
        (Prog.comm_needs rhs)
  | _ -> Alcotest.fail "body shape"

let test_constant_folding () =
  let p = compile "procedure main(); begin [1..n-1, 2..n] A := 1.0; end;" in
  match p.Prog.body with
  | [ Prog.AssignA { region; _ } ] ->
      (match Prog.static_region region with
      | Some r ->
          Alcotest.(check string) "folded bounds" "[1..7, 2..8]" (Region.to_string r)
      | None -> Alcotest.fail "region should be static")
  | _ -> Alcotest.fail "body shape"

let test_defines_override () =
  let p =
    compile ~defines:[ ("n", 16.) ]
      "procedure main(); begin [R] A := 0.0; end;"
  in
  Alcotest.(check string) "declared region follows n=16" "[0..17, 0..17]"
    (Region.to_string (Prog.array_info p 0).a_region)

let test_region_inheritance () =
  (* the second statement inherits [R] from the first *)
  let p =
    compile "procedure main(); begin [R] A := 1.0; B := A@east; end;"
  in
  match p.Prog.body with
  | [ Prog.AssignA a1; Prog.AssignA a2 ] ->
      Alcotest.(check bool) "same region" true (Prog.equal_dregion a1.region a2.region)
  | _ -> Alcotest.fail "body shape"

let test_loop_variant_region () =
  let p =
    compile
      "procedure main(); begin for k := 2 to n do [k..k, 1..n] A := 1.0; end; end;"
  in
  match p.Prog.body with
  | [ Prog.For { body = [ Prog.AssignA { region; _ } ]; _ } ] ->
      Alcotest.(check bool) "dynamic" true (Prog.static_region region = None)
  | _ -> Alcotest.fail "body shape"

let test_inlining () =
  let p =
    compile
      {|
procedure helper(); begin [R] A := A + 1.0; end;
procedure main(); begin helper(); helper(); end;
|}
  in
  Alcotest.(check int) "two inlined statements" 2 (List.length p.Prog.body)

let test_recursion_rejected () =
  expect_error
    "procedure loop(); begin loop(); end; procedure main(); begin loop(); end;"
    "recursive"

let test_reduce_forms () =
  let p =
    compile "procedure main(); begin [R] x := max<< abs(A - B); end;"
  in
  match p.Prog.body with
  | [ Prog.ReduceS { r_op = Ast.RMax; _ } ] -> ()
  | _ -> Alcotest.fail "reduce shape"

let test_flops_positive () =
  let p =
    compile "procedure main(); begin [R] A := sqrt(B@east * B + 2.0); end;"
  in
  match p.Prog.body with
  | [ Prog.AssignA { flops; _ } ] ->
      Alcotest.(check bool) "flops counted" true (flops >= 10)
  | _ -> Alcotest.fail "body shape"

let test_fringe_widths () =
  let p =
    compile
      "procedure main(); begin [1..n-2, 1..n] A := B@[2,0] + B@east + A@north; end;"
  in
  let w = Prog.fringe_widths p in
  Alcotest.(check int) "A width" 1 w.(0);
  Alcotest.(check int) "B width" 2 w.(1)

let test_errors () =
  expect_error "procedure main(); begin [R] A := flag; end;" "boolean";
  expect_error "procedure main(); begin [R] A := C; end;" "unknown name";
  expect_error "procedure main(); begin x := A; end;" "scalar context";
  expect_error "procedure main(); begin [R] A := B@nowhere; end;" "unknown name";
  expect_error "procedure main(); begin [R] A := B@n; end;" "not a direction";
  expect_error "procedure main(); begin [R] k := max<< A; end;" "float scalar";
  expect_error "procedure main(); begin [R] A := 1.0 + max<< B; end;"
    "top of an assignment";
  expect_error "procedure main(); begin A := 1.0; end;" "no region in scope";
  expect_error "procedure main(); begin [0..n+2, 1..n] A := 1.0; end;"
    "outside";
  expect_error "procedure main(); begin [R] A := B@[9,0]; end;"
    "reads outside";
  expect_error "procedure main(); begin repeat x := 1.0; until x; end;" "boolean";
  expect_error "procedure main(); begin for k := 1.5 to 3 do x := 1.0; end; end;"
    "integers";
  expect_error "procedure main(); begin [k..k*2, 1..n] A := 1.0; end;"
    "form";
  expect_error "var Z : [1..4] float;\nprocedure main(); begin x := 1.0; end;"
    "rank"

(* A reduction over a statically empty region would silently yield the
   operator's identity (neg_infinity for max<<, infinity for min<<) —
   the checker rejects it with the source location, whether the bounds
   are empty in the source text or emptied by a [constant] override.
   Regions that only become empty at run time cannot be seen here and
   must be accepted; their identity semantics are pinned by the runtime
   tests. *)
let test_empty_reduction_rejected () =
  expect_error "procedure main(); begin [5..4, 1..n] x := max<< A; end;"
    "statically empty";
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    ln = 0 || go 0
  in
  match
    compile ~defines:[ ("n", 0.) ]
      "procedure main(); begin [R] x := min<< A; end;"
  with
  | _ -> Alcotest.fail "expected rejection when a define empties the region"
  | exception Loc.Error (_, msg) ->
      Alcotest.(check bool) "mentions the empty region" true
        (contains msg "statically empty" && contains msg "min<<")

let test_dynamic_empty_reduction_accepted () =
  ignore
    (compile
       "procedure main(); begin k := 0; [1..k, 1..n] x := max<< A; end;")

let test_index_arrays () =
  let p = compile "procedure main(); begin [R] A := Index1 + 2.0 * Index2; end;" in
  match p.Prog.body with
  | [ Prog.AssignA { rhs = Prog.ABin (_, Prog.AIndex 0, _); _ } ] -> ()
  | _ -> Alcotest.fail "Index1/Index2 shape"

let () =
  Alcotest.run "check"
    [ ( "accepts",
        [ Alcotest.test_case "basic program" `Quick test_basic;
          Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "defines override" `Quick test_defines_override;
          Alcotest.test_case "region inheritance" `Quick test_region_inheritance;
          Alcotest.test_case "loop-variant regions" `Quick test_loop_variant_region;
          Alcotest.test_case "procedure inlining" `Quick test_inlining;
          Alcotest.test_case "reductions" `Quick test_reduce_forms;
          Alcotest.test_case "flops estimate" `Quick test_flops_positive;
          Alcotest.test_case "fringe widths" `Quick test_fringe_widths;
          Alcotest.test_case "IndexD" `Quick test_index_arrays;
          Alcotest.test_case "dynamic empty reduction accepted" `Quick
            test_dynamic_empty_reduction_accepted ] );
      ( "rejects",
        [ Alcotest.test_case "recursion" `Quick test_recursion_rejected;
          Alcotest.test_case "semantic errors" `Quick test_errors;
          Alcotest.test_case "empty reduction rejected" `Quick
            test_empty_reduction_rejected ] ) ]
